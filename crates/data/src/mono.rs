//! Monochromatic values and pieces (Definition 9) and discontinuity
//! analysis (Section 5.4).

use crate::dataset::SortedColumn;
use crate::schema::ClassId;

/// A maximal monochromatic piece: a run of consecutive *distinct*
/// values, all monochromatic with the same label.
///
/// Piece extents are expressed as ranges over the distinct-value
/// groups of a [`SortedColumn`], matching the paper's convention of
/// measuring piece length in distinct values (Figure 8 reports, e.g.,
/// 9 pieces of average length 163 covering 74.2% of attribute 1's
/// 1978 distinct values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonoPiece {
    /// First distinct-value group (inclusive).
    pub first_group: usize,
    /// Last distinct-value group (exclusive).
    pub end_group: usize,
    /// The common class label of the piece.
    pub label: ClassId,
}

impl MonoPiece {
    /// Piece length in distinct values.
    #[inline]
    pub fn len(&self) -> usize {
        self.end_group - self.first_group
    }

    /// Pieces are never empty; mirrors the std convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.first_group == self.end_group
    }
}

/// Monochromatic-structure analysis of one attribute.
///
/// ```
/// use ppdt_data::{gen, AttrId, MonoAnalysis};
///
/// let d = gen::figure1();
/// let sc = d.sorted_column(AttrId(1)); // salary: HHHH then LL
/// let ma = MonoAnalysis::analyze(&sc, 1);
/// assert_eq!(ma.num_pieces(), 2);
/// assert_eq!(ma.total_piece_values(), 6); // every value is monochromatic
/// ```
#[derive(Clone, Debug)]
pub struct MonoAnalysis {
    /// For each distinct-value group: `Some(label)` iff the value is
    /// monochromatic.
    pub group_labels: Vec<Option<ClassId>>,
    /// Maximal monochromatic pieces of at least the requested minimum
    /// width, in ascending value order.
    pub pieces: Vec<MonoPiece>,
    /// The minimum piece width used by the analysis.
    pub min_piece_len: usize,
}

impl MonoAnalysis {
    /// Analyzes the monochromatic structure of a sorted column.
    ///
    /// `min_piece_len` is the minimum width threshold of Section 5.2
    /// ("in practice, ChooseMaxMP may impose a minimum width threshold,
    /// e.g. width ≥ 5"): maximal runs of same-label monochromatic
    /// values shorter than the threshold are *not* reported as pieces
    /// (their values remain eligible as ordinary non-monochromatic
    /// material for the caller).
    pub fn analyze(sc: &SortedColumn, min_piece_len: usize) -> Self {
        assert!(min_piece_len >= 1, "min_piece_len must be at least 1");
        let group_labels: Vec<Option<ClassId>> =
            sc.groups.iter().map(|g| g.monochromatic_label()).collect();

        let mut pieces = Vec::new();
        let mut i = 0usize;
        while i < group_labels.len() {
            match group_labels[i] {
                None => i += 1,
                Some(label) => {
                    let start = i;
                    while i < group_labels.len() && group_labels[i] == Some(label) {
                        i += 1;
                    }
                    if i - start >= min_piece_len {
                        pieces.push(MonoPiece { first_group: start, end_group: i, label });
                    }
                }
            }
        }
        MonoAnalysis { group_labels, pieces, min_piece_len }
    }

    /// Number of monochromatic pieces (of at least the minimum width).
    #[inline]
    pub fn num_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// Total number of distinct values covered by the pieces.
    pub fn total_piece_values(&self) -> usize {
        self.pieces.iter().map(MonoPiece::len).sum()
    }

    /// Mean piece length in distinct values (0 if there are no pieces).
    pub fn avg_piece_len(&self) -> f64 {
        if self.pieces.is_empty() {
            0.0
        } else {
            self.total_piece_values() as f64 / self.pieces.len() as f64
        }
    }

    /// Fraction of distinct values covered by monochromatic pieces.
    pub fn pct_piece_values(&self) -> f64 {
        if self.group_labels.is_empty() {
            0.0
        } else {
            self.total_piece_values() as f64 / self.group_labels.len() as f64
        }
    }

    /// True iff distinct-value group `g` lies inside some piece.
    pub fn group_in_piece(&self, g: usize) -> bool {
        // Pieces are sorted and disjoint; binary search by start.
        let idx = self.pieces.partition_point(|p| p.end_group <= g);
        self.pieces.get(idx).is_some_and(|p| p.first_group <= g && g < p.end_group)
    }
}

/// Counts the discontinuities of an attribute over a unit-granularity
/// integer domain: grid positions in `[min, max]` at which no tuple
/// occurs (Section 5.4).
///
/// `granularity` is the domain's value step (1.0 for the integer
/// attributes of the covertype benchmark). Values are snapped to the
/// grid by rounding; the count is
/// `round((max - min)/granularity) + 1 - num_distinct`, clamped at 0,
/// which reproduces the paper's Figure 11 arithmetic (dynamic-range
/// width minus number of distinct values).
pub fn num_discontinuities(sc: &SortedColumn, granularity: f64) -> usize {
    assert!(granularity > 0.0, "granularity must be positive");
    let n = sc.groups.len();
    if n == 0 {
        return 0;
    }
    let lo = sc.groups[0].value;
    let hi = sc.groups[n - 1].value;
    let slots = ((hi - lo) / granularity).round() as usize + 1;
    slots.saturating_sub(n)
}

/// The dynamic-range width of an attribute in grid units: the number of
/// grid positions in `[min, max]` (`max - min + 1` for integer domains),
/// as used by the paper's Figure 8.
pub fn dynamic_range_width(sc: &SortedColumn, granularity: f64) -> usize {
    assert!(granularity > 0.0, "granularity must be positive");
    let n = sc.groups.len();
    if n == 0 {
        return 0;
    }
    let lo = sc.groups[0].value;
    let hi = sc.groups[n - 1].value;
    ((hi - lo) / granularity).round() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetBuilder};
    use crate::schema::{AttrId, Schema};

    /// The running example of Figures 3/4/7:
    /// values 1,2,15,15,27,28,29,29,29,29,42,43,44
    /// labels H H H  H  L  L  L  L  H  H  H  H  H   (H=0, L=1)
    fn paper_example() -> Dataset {
        let schema = Schema::new(["a"], ["H", "L"]);
        let mut b = DatasetBuilder::new(schema);
        let rows = [
            (1.0, 0u16),
            (2.0, 0),
            (15.0, 0),
            (15.0, 0),
            (27.0, 1),
            (28.0, 1),
            (29.0, 1),
            (29.0, 1),
            (29.0, 0),
            (29.0, 0),
            (42.0, 0),
            (43.0, 0),
            (44.0, 0),
        ];
        for (v, c) in rows {
            b.push_row(&[v], ClassId(c));
        }
        b.build()
    }

    #[test]
    fn paper_example_pieces_match_choosemaxmp_walkthrough() {
        // Section 5.2: ChooseMaxMP creates pieces
        //   r1 = {1,2,15} (H), r2 = {27,28} (L), r3 = {29} non-mono,
        //   r4 = {42,43,44} (H).
        let d = paper_example();
        let sc = d.sorted_column(AttrId(0));
        let ma = MonoAnalysis::analyze(&sc, 1);
        assert_eq!(ma.num_pieces(), 3);
        let lens: Vec<usize> = ma.pieces.iter().map(MonoPiece::len).collect();
        assert_eq!(lens, vec![3, 2, 3]);
        assert_eq!(ma.pieces[0].label, ClassId(0));
        assert_eq!(ma.pieces[1].label, ClassId(1));
        assert_eq!(ma.pieces[2].label, ClassId(0));
        // 29 is the only non-monochromatic value.
        let non_mono: Vec<f64> = sc
            .groups
            .iter()
            .zip(&ma.group_labels)
            .filter(|(_, l)| l.is_none())
            .map(|(g, _)| g.value)
            .collect();
        assert_eq!(non_mono, vec![29.0]);
    }

    #[test]
    fn min_piece_len_filters_short_pieces() {
        let d = paper_example();
        let sc = d.sorted_column(AttrId(0));
        let ma = MonoAnalysis::analyze(&sc, 3);
        // Only the length-3 pieces survive a width >= 3 threshold.
        assert_eq!(ma.num_pieces(), 2);
        assert_eq!(ma.total_piece_values(), 6);
    }

    #[test]
    fn adjacent_pieces_of_different_labels_stay_separate() {
        // values 1(H) 2(H) 3(L) 4(L): two adjacent mono pieces.
        let schema = Schema::new(["a"], ["H", "L"]);
        let mut b = DatasetBuilder::new(schema);
        for (v, c) in [(1.0, 0u16), (2.0, 0), (3.0, 1), (4.0, 1)] {
            b.push_row(&[v], ClassId(c));
        }
        let d = b.build();
        let ma = MonoAnalysis::analyze(&d.sorted_column(AttrId(0)), 1);
        assert_eq!(ma.num_pieces(), 2);
        assert_eq!(ma.pieces[0].label, ClassId(0));
        assert_eq!(ma.pieces[1].label, ClassId(1));
    }

    #[test]
    fn group_in_piece_lookup() {
        let d = paper_example();
        let sc = d.sorted_column(AttrId(0));
        let ma = MonoAnalysis::analyze(&sc, 1);
        // groups: 1,2,15,27,28,29,42,43,44 (9 distinct values)
        assert_eq!(sc.num_distinct(), 9);
        for g in 0..sc.num_distinct() {
            let inside = ma.group_in_piece(g);
            let expected = g != 5; // only 29 (group 5) is outside
            assert_eq!(inside, expected, "group {g}");
        }
    }

    #[test]
    fn stats_helpers() {
        let d = paper_example();
        let sc = d.sorted_column(AttrId(0));
        let ma = MonoAnalysis::analyze(&sc, 1);
        assert_eq!(ma.total_piece_values(), 8);
        assert!((ma.avg_piece_len() - 8.0 / 3.0).abs() < 1e-12);
        assert!((ma.pct_piece_values() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn discontinuity_count_matches_figure11_arithmetic() {
        let d = paper_example();
        let sc = d.sorted_column(AttrId(0));
        // domain [1,44]: 44 slots, 9 distinct -> 35 discontinuities.
        assert_eq!(dynamic_range_width(&sc, 1.0), 44);
        assert_eq!(num_discontinuities(&sc, 1.0), 35);
    }

    #[test]
    fn empty_column_edge_cases() {
        let d = Dataset::from_columns(Schema::generated(1, 2), vec![vec![]], vec![]);
        let sc = d.sorted_column(AttrId(0));
        let ma = MonoAnalysis::analyze(&sc, 1);
        assert_eq!(ma.num_pieces(), 0);
        assert_eq!(ma.pct_piece_values(), 0.0);
        assert_eq!(num_discontinuities(&sc, 1.0), 0);
        assert_eq!(dynamic_range_width(&sc, 1.0), 0);
    }
}
