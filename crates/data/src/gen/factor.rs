//! A latent-factor dataset: attributes share one hidden factor, so
//! they are strongly correlated — the setting where spectral attacks
//! against additive-noise perturbation shine (reference \[7\] of the
//! paper; see `ppdt-attack::spectral`).

use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::dataset::Dataset;
use crate::schema::{ClassId, Schema};

/// Generates an `n × loadings.len()` dataset where attribute `j` is
/// `loadings[j] · factor + ε`, values snapped to integers, and the
/// class label is whether the latent factor is positive.
///
/// * `factor_sd` — spread of the latent factor,
/// * `idio_sd` — per-attribute idiosyncratic noise.
///
/// # Panics
/// Panics if `loadings` is empty or the deviations are non-positive.
pub fn factor_model<R: Rng + ?Sized>(
    rng: &mut R,
    num_rows: usize,
    loadings: &[f64],
    factor_sd: f64,
    idio_sd: f64,
) -> Dataset {
    assert!(!loadings.is_empty(), "need at least one loading");
    assert!(factor_sd > 0.0 && idio_sd > 0.0, "deviations must be positive");
    let schema = Schema::new(
        (0..loadings.len()).map(|i| format!("f{i}")),
        ["neg".to_string(), "pos".to_string()],
    );
    let factor = Normal::new(0.0, factor_sd).expect("valid normal");
    let idio = Normal::new(0.0, idio_sd).expect("valid normal");

    let mut columns = vec![Vec::with_capacity(num_rows); loadings.len()];
    let mut labels = Vec::with_capacity(num_rows);
    for _ in 0..num_rows {
        let f = factor.sample(rng);
        labels.push(ClassId(u16::from(f > 0.0)));
        for (col, &l) in columns.iter_mut().zip(loadings) {
            col.push((l * f + idio.sample(rng)).round());
        }
    }
    Dataset::from_columns(schema, columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attributes_are_correlated() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = factor_model(&mut rng, 4_000, &[1.0, 0.8, -1.2], 20.0, 1.0);
        let a = d.column(AttrId(0));
        let b = d.column(AttrId(2));
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum::<f64>() / n;
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
        let corr = cov / (va * vb).sqrt();
        assert!(corr < -0.9, "strongly anti-correlated by loadings, got {corr}");
    }

    #[test]
    fn labels_track_the_factor() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = factor_model(&mut rng, 2_000, &[1.0, 1.0], 20.0, 1.0);
        // Attribute 0 is positive almost exactly when the label is pos.
        let mut agree = 0usize;
        for r in 0..d.num_rows() {
            if (d.value(r, AttrId(0)) > 0.0) == (d.label(r).0 == 1) {
                agree += 1;
            }
        }
        assert!(agree as f64 / d.num_rows() as f64 > 0.95);
    }

    #[test]
    fn integer_grid() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = factor_model(&mut rng, 200, &[2.0], 10.0, 1.0);
        assert!(d.column(AttrId(0)).iter().all(|v| v.fract() == 0.0));
    }
}
