//! A census-income-like synthetic dataset (stand-in for the UCI census
//! income benchmark the paper mentions; see `DESIGN.md` §3).

use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::dataset::Dataset;
use crate::schema::Schema;

use super::sample_labels;

/// Generates a census-like dataset: six integer attributes (`age`,
/// `wage`, `edu_years`, `capital_gain`, `capital_loss`, `hours`) and a
/// binary income class (`<=50K` / `>50K`, about 25% positive).
///
/// Attribute distributions are class-shifted normal mixtures rounded to
/// integers, giving the mixture of monochromatic stretches, mixed
/// regions and discontinuities the piecewise framework feeds on.
pub fn census_like<R: Rng + ?Sized>(rng: &mut R, num_rows: usize) -> Dataset {
    let schema = Schema::new(
        ["age", "wage", "edu_years", "capital_gain", "capital_loss", "hours"],
        ["le50K", "gt50K"],
    );
    let labels = sample_labels(rng, num_rows, &[0.75, 0.25]);

    // (mean_class0, mean_class1, sd, min, max)
    let specs = [
        (36.0, 44.0, 13.0, 17.0, 90.0),
        (28_000.0, 62_000.0, 11_000.0, 0.0, 150_000.0),
        (9.5, 12.5, 2.5, 1.0, 16.0),
        (400.0, 4_000.0, 1_500.0, 0.0, 20_000.0),
        (80.0, 200.0, 120.0, 0.0, 2_500.0),
        (38.0, 45.0, 11.0, 1.0, 99.0),
    ];

    let mut columns = Vec::with_capacity(specs.len());
    for &(m0, m1, sd, lo, hi) in &specs {
        let d0 = Normal::new(m0, sd).expect("valid normal");
        let d1 = Normal::new(m1, sd).expect("valid normal");
        let col: Vec<f64> = labels
            .iter()
            .map(|c| {
                let raw: f64 = if c.index() == 0 { d0.sample(rng) } else { d1.sample(rng) };
                raw.clamp(lo, hi).round()
            })
            .collect();
        columns.push(col);
    }
    Dataset::from_columns(schema, columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = census_like(&mut rng, 4_000);
        assert_eq!(d.num_rows(), 4_000);
        assert_eq!(d.num_attrs(), 6);
        assert_eq!(d.num_classes(), 2);
        let (lo, hi) = d.min_max(AttrId(0)).unwrap();
        assert!(lo >= 17.0 && hi <= 90.0);
        // Integer grid.
        assert!(d.column(AttrId(0)).iter().all(|v| v.fract() == 0.0));
    }

    #[test]
    fn class_skew_roughly_25_percent() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = census_like(&mut rng, 10_000);
        let pos = d.labels().iter().filter(|c| c.0 == 1).count() as f64;
        let frac = pos / d.num_rows() as f64;
        assert!((frac - 0.25).abs() < 0.03, "{frac}");
    }

    #[test]
    fn classes_are_separable_in_expectation() {
        // wage means differ by ~3 sd, so the per-class wage averages
        // must be clearly ordered — this is what makes trees non-trivial.
        let mut rng = StdRng::seed_from_u64(13);
        let d = census_like(&mut rng, 5_000);
        let wage = d.column(AttrId(1));
        let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0.0, 0.0, 0.0);
        for (v, c) in wage.iter().zip(d.labels()) {
            if c.0 == 0 {
                s0 += v;
                n0 += 1.0;
            } else {
                s1 += v;
                n1 += 1.0;
            }
        }
        assert!(s1 / n1 > s0 / n0 + 10_000.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d1 = census_like(&mut StdRng::seed_from_u64(3), 500);
        let d2 = census_like(&mut StdRng::seed_from_u64(3), 500);
        assert_eq!(d1, d2);
    }
}
