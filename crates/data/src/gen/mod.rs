//! Synthetic dataset generators.
//!
//! The paper evaluates on the UCI forest covertype, census income and
//! WDBC benchmarks. Those files are not shipped with this repository;
//! instead [`covertype_like`] generates a dataset calibrated to the
//! per-attribute statistics the paper itself reports (Figure 8 and
//! Figure 11), which is what every experiment in Section 6 actually
//! depends on (see `DESIGN.md` §3 for the substitution argument).
//! [`census_like`] and [`wdbc_like`] provide smaller stand-ins for the
//! other two benchmarks, [`figure1`] reproduces the worked example of
//! the paper's Figure 1, and [`random_dataset`] is a generic generator
//! for property tests.

mod census;
mod covertype;
mod factor;
mod figure1;
mod random;
mod wdbc;

pub use census::census_like;
pub use covertype::{covertype_like, covertype_spec, CovertypeAttrSpec, CovertypeConfig};
pub use factor::factor_model;
pub use figure1::{figure1, figure1_transformed};
pub use random::{random_dataset, RandomDatasetConfig};
pub use wdbc::wdbc_like;

use rand::Rng;

use crate::schema::ClassId;

/// Samples `n` class labels according to the probability weights
/// `freqs` (need not be normalized).
pub(crate) fn sample_labels<R: Rng + ?Sized>(rng: &mut R, n: usize, freqs: &[f64]) -> Vec<ClassId> {
    assert!(!freqs.is_empty(), "need at least one class frequency");
    let total: f64 = freqs.iter().sum();
    assert!(total > 0.0, "class frequencies must sum to a positive value");
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut x = rng.gen::<f64>() * total;
        let mut chosen = freqs.len() - 1;
        for (i, &f) in freqs.iter().enumerate() {
            if x < f {
                chosen = i;
                break;
            }
            x -= f;
        }
        labels.push(ClassId(chosen as u16));
    }
    labels
}

/// Picks an index in `0..weights.len()` proportionally to `weights`,
/// skipping indices where `allowed` returns false. Returns `None` if no
/// index is allowed.
pub(crate) fn weighted_pick<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    mut allowed: impl FnMut(usize) -> bool,
) -> Option<usize> {
    let total: f64 = weights.iter().enumerate().filter(|&(i, _)| allowed(i)).map(|(_, &w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen::<f64>() * total;
    let mut last = None;
    for (i, &w) in weights.iter().enumerate() {
        if !allowed(i) {
            continue;
        }
        last = Some(i);
        if x < w {
            return Some(i);
        }
        x -= w;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_labels_respects_frequencies() {
        let mut rng = StdRng::seed_from_u64(1);
        let labels = sample_labels(&mut rng, 20_000, &[0.7, 0.3]);
        let ones = labels.iter().filter(|c| c.0 == 1).count();
        let frac = ones as f64 / labels.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn weighted_pick_skips_disallowed() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let i = weighted_pick(&mut rng, &[1.0, 1.0, 1.0], |i| i != 1).unwrap();
            assert_ne!(i, 1);
        }
    }

    #[test]
    fn weighted_pick_none_when_all_disallowed() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(weighted_pick(&mut rng, &[1.0, 1.0], |_| false), None);
    }
}
