//! A WDBC-like synthetic dataset (stand-in for the UCI Wisconsin
//! diagnostic breast cancer benchmark; see `DESIGN.md` §3).

use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::dataset::Dataset;
use crate::schema::Schema;

use super::sample_labels;

/// Generates a WDBC-like dataset: ten real-valued cell-morphology
/// attributes on a 0.01 grid and a binary `benign`/`malignant` class
/// (about 37% malignant, as in the real benchmark's 569 rows).
///
/// Pass `num_rows = 569` for the benchmark's size.
pub fn wdbc_like<R: Rng + ?Sized>(rng: &mut R, num_rows: usize) -> Dataset {
    let names = [
        "radius",
        "texture",
        "perimeter",
        "area",
        "smoothness",
        "compactness",
        "concavity",
        "concave_points",
        "symmetry",
        "fractal_dim",
    ];
    let schema = Schema::new(names, ["benign", "malignant"]);
    let labels = sample_labels(rng, num_rows, &[0.63, 0.37]);

    // (benign mean, malignant mean, sd) per attribute — loosely shaped
    // on the real benchmark's scale differences.
    let specs = [
        (12.1, 17.5, 1.8),
        (17.9, 21.6, 3.9),
        (78.0, 115.0, 12.0),
        (463.0, 978.0, 140.0),
        (0.092, 0.103, 0.013),
        (0.080, 0.145, 0.035),
        (0.046, 0.160, 0.050),
        (0.026, 0.088, 0.022),
        (0.174, 0.193, 0.025),
        (0.063, 0.063, 0.007),
    ];

    let mut columns = Vec::with_capacity(specs.len());
    for &(m0, m1, sd) in &specs {
        let d0 = Normal::new(m0, sd).expect("valid normal");
        let d1 = Normal::new(m1, sd).expect("valid normal");
        let col: Vec<f64> = labels
            .iter()
            .map(|c| {
                let raw: f64 = if c.index() == 0 { d0.sample(rng) } else { d1.sample(rng) };
                // Snap to a 0.01 grid and keep values positive.
                (raw.max(0.0) * 100.0).round() / 100.0
            })
            .collect();
        columns.push(col);
    }
    Dataset::from_columns(schema, columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_matches_benchmark() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = wdbc_like(&mut rng, 569);
        assert_eq!(d.num_rows(), 569);
        assert_eq!(d.num_attrs(), 10);
        assert_eq!(d.num_classes(), 2);
    }

    #[test]
    fn values_on_centigrid_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(22);
        let d = wdbc_like(&mut rng, 569);
        for a in d.schema().attrs() {
            for &v in d.column(a) {
                assert!(v >= 0.0);
                let scaled = v * 100.0;
                assert!((scaled - scaled.round()).abs() < 1e-9, "{v} off grid");
            }
        }
    }

    #[test]
    fn malignant_fraction_roughly_37_percent() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = wdbc_like(&mut rng, 5_000);
        let m = d.labels().iter().filter(|c| c.0 == 1).count() as f64;
        assert!((m / 5_000.0 - 0.37).abs() < 0.03);
    }

    #[test]
    fn area_separates_classes() {
        let mut rng = StdRng::seed_from_u64(24);
        let d = wdbc_like(&mut rng, 2_000);
        let area = d.column(AttrId(3));
        let mean = |cls: u16| {
            let (mut s, mut n) = (0.0, 0.0);
            for (v, c) in area.iter().zip(d.labels()) {
                if c.0 == cls {
                    s += v;
                    n += 1.0;
                }
            }
            s / n
        };
        assert!(mean(1) > mean(0) + 300.0);
    }
}
