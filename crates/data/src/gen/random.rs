//! Generic random datasets for property tests and fuzzing.

use rand::Rng;

use crate::dataset::Dataset;
use crate::schema::{ClassId, Schema};

/// Configuration for [`random_dataset`].
#[derive(Clone, Copy, Debug)]
pub struct RandomDatasetConfig {
    /// Number of tuples.
    pub num_rows: usize,
    /// Number of numeric attributes.
    pub num_attrs: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Values are integers drawn uniformly from `[0, value_range)`;
    /// keep this small relative to `num_rows` to exercise ties and
    /// non-monochromatic values.
    pub value_range: u64,
}

impl Default for RandomDatasetConfig {
    fn default() -> Self {
        RandomDatasetConfig { num_rows: 200, num_attrs: 3, num_classes: 3, value_range: 40 }
    }
}

/// Generates a dataset of uniform random integer values and labels.
///
/// Unlike the calibrated generators this makes no attempt at realism;
/// it exists to exercise every edge of the downstream code — heavy
/// ties, non-monochromatic values, tiny domains, unbalanced classes.
pub fn random_dataset<R: Rng + ?Sized>(rng: &mut R, config: &RandomDatasetConfig) -> Dataset {
    assert!(config.num_classes >= 2, "need at least two classes");
    assert!(config.num_attrs >= 1, "need at least one attribute");
    assert!(config.value_range >= 1, "need a non-empty value range");
    let schema = Schema::generated(config.num_attrs, config.num_classes);
    let labels: Vec<ClassId> = (0..config.num_rows)
        .map(|_| ClassId(rng.gen_range(0..config.num_classes) as u16))
        .collect();
    let columns: Vec<Vec<f64>> = (0..config.num_attrs)
        .map(|_| {
            (0..config.num_rows).map(|_| rng.gen_range(0..config.value_range) as f64).collect()
        })
        .collect();
    Dataset::from_columns(schema, columns, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_config() {
        let mut rng = StdRng::seed_from_u64(31);
        let cfg =
            RandomDatasetConfig { num_rows: 77, num_attrs: 4, num_classes: 5, value_range: 10 };
        let d = random_dataset(&mut rng, &cfg);
        assert_eq!(d.num_rows(), 77);
        assert_eq!(d.num_attrs(), 4);
        assert_eq!(d.num_classes(), 5);
        for a in d.schema().attrs() {
            for &v in d.column(a) {
                assert!((0.0..10.0).contains(&v));
            }
        }
        let _ = AttrId(0);
    }

    #[test]
    fn zero_rows_allowed() {
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = RandomDatasetConfig { num_rows: 0, ..Default::default() };
        let d = random_dataset(&mut rng, &cfg);
        assert_eq!(d.num_rows(), 0);
    }
}
