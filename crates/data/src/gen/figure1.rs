//! The worked example of the paper's Figure 1.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::schema::{AttrId, ClassId, Schema};

/// The training data `D` of Figure 1(a): six employees with `age` and
/// `salary` attributes and a `High`/`Low` class label.
///
/// Sorted on `age` the class string is `HHHLHL`; sorted on `salary` it
/// is `HHHHLL` (Section 4 of the paper).
pub fn figure1() -> Dataset {
    let schema = Schema::new(["age", "salary"], ["High", "Low"]);
    let mut b = DatasetBuilder::new(schema);
    // (age, salary, class); classes: High = 0, Low = 1.
    // Chosen to reproduce the paper's class strings:
    //   sigma_age    = H H H L H L over ages 17,20,23,32,43,68
    //   sigma_salary = H H H H L L over salaries sorted ascending
    let h = ClassId(0);
    let l = ClassId(1);
    b.push_row(&[17.0, 30_000.0], h);
    b.push_row(&[20.0, 35_000.0], h);
    b.push_row(&[23.0, 40_000.0], h);
    b.push_row(&[32.0, 50_000.0], l);
    b.push_row(&[43.0, 45_000.0], h);
    b.push_row(&[68.0, 55_000.0], l);
    b.build()
}

/// The transformed data `D'` of Figure 1(b), obtained from
/// [`figure1`] with the paper's linear monotone transformations
/// `age' = 0.9·age + 10` and `salary' = 0.5·salary`.
pub fn figure1_transformed() -> Dataset {
    let d = figure1();
    let age: Vec<f64> = d.column(AttrId(0)).iter().map(|&v| 0.9 * v + 10.0).collect();
    let salary: Vec<f64> = d.column(AttrId(1)).iter().map(|&v| 0.5 * v).collect();
    d.with_columns(vec![age, salary])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class_string::ClassString;

    #[test]
    fn class_strings_match_paper() {
        let d = figure1();
        assert_eq!(ClassString::of(&d, AttrId(0)).render(), "AAABAB");
        assert_eq!(ClassString::of(&d, AttrId(1)).render(), "AAAABB");
    }

    #[test]
    fn transformation_preserves_class_strings() {
        let d = figure1();
        let d2 = figure1_transformed();
        for a in [AttrId(0), AttrId(1)] {
            assert_eq!(ClassString::of(&d, a), ClassString::of(&d2, a));
        }
    }

    #[test]
    fn transformed_ages_match_figure() {
        let d2 = figure1_transformed();
        let mut ages: Vec<f64> = d2.column(AttrId(0)).to_vec();
        ages.sort_by(f64::total_cmp);
        // 0.9*{17,20,23,32,43,68}+10 = {25.3, 28, 30.7, 38.8, 48.7, 71.2}
        let expect = [25.3, 28.0, 30.7, 38.8, 48.7, 71.2];
        for (a, e) in ages.iter().zip(expect) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn label_run_structure_preserved() {
        let d = figure1();
        let d2 = figure1_transformed();
        for a in [AttrId(0), AttrId(1)] {
            let r1 = ClassString::of(&d, a).runs();
            let r2 = ClassString::of(&d2, a).runs();
            assert_eq!(r1, r2);
        }
    }
}
