//! Covertype-like synthetic data, calibrated to the per-attribute
//! statistics the paper reports for the UCI forest covertype benchmark
//! (Figure 8 and Figure 11).
//!
//! The real data is not shipped; every Section 6 experiment depends on
//! the data only through the monochromatic-piece structure, the number
//! of discontinuities, the distinct-value counts and the
//! class-conditional value layout — all of which this generator
//! reproduces by construction:
//!
//! 1. the class labels are drawn with covertype-like frequencies
//!    (7 classes, heavily skewed towards classes 1 and 2);
//! 2. per attribute, a sorted sequence of `num_distinct` integer values
//!    is laid out over a `[0, width)` grid (fixing the discontinuity
//!    count), then partitioned into monochromatic *segments* (each
//!    owned by one class) and *mixed* values (shared by ≥ 2 classes)
//!    matching the target piece count and coverage;
//! 3. a seeding pass pins one tuple per monochromatic value (of the
//!    owning class) and two tuples of different classes per mixed
//!    value, guaranteeing the planned structure is realized exactly;
//! 4. the remaining tuples sample values uniformly from their class's
//!    candidate set.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::schema::{ClassId, Schema};

use super::{sample_labels, weighted_pick};

/// Per-attribute calibration target (one row of the paper's Figure 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CovertypeAttrSpec {
    /// Dynamic-range width (number of grid positions, `max-min+1`).
    pub range_width: usize,
    /// Number of distinct values occurring in the data.
    pub num_distinct: usize,
    /// Target number of monochromatic pieces.
    pub num_mono_pieces: usize,
    /// Target fraction of distinct values inside monochromatic pieces.
    pub pct_mono_values: f64,
}

/// The ten attribute targets of the paper's Figure 8 (attributes #1–#10
/// of forest covertype).
pub fn covertype_spec() -> Vec<CovertypeAttrSpec> {
    // (width, distinct, pieces, pct mono)
    let rows = [
        (2000, 1978, 9, 0.742),
        (361, 361, 0, 0.0),
        (67, 67, 1, 0.224),
        (1398, 551, 22, 0.400),
        (775, 700, 14, 0.480),
        (7118, 5785, 202, 0.629),
        (255, 207, 2, 0.396),
        (255, 185, 8, 0.259),
        (255, 255, 3, 0.094),
        (7174, 5827, 229, 0.668),
    ];
    rows.iter()
        .map(|&(w, d, p, pct)| CovertypeAttrSpec {
            range_width: w,
            num_distinct: d,
            num_mono_pieces: p,
            pct_mono_values: pct,
        })
        .collect()
}

/// Configuration for [`covertype_like`].
#[derive(Clone, Debug)]
pub struct CovertypeConfig {
    /// Number of tuples to generate. The real benchmark has 581,012;
    /// the experiment harness defaults to a 1/10 scale.
    pub num_rows: usize,
    /// Per-attribute calibration targets; defaults to [`covertype_spec`].
    pub attrs: Vec<CovertypeAttrSpec>,
    /// Class frequencies; defaults to covertype's 7-class skew.
    pub class_freqs: Vec<f64>,
    /// Minimum monochromatic piece width (the paper suggests 5).
    pub min_piece_len: usize,
}

impl Default for CovertypeConfig {
    fn default() -> Self {
        CovertypeConfig {
            num_rows: 58_101,
            attrs: covertype_spec(),
            // Approximate covertype class distribution.
            class_freqs: vec![0.365, 0.488, 0.062, 0.005, 0.016, 0.030, 0.035],
            min_piece_len: 5,
        }
    }
}

impl CovertypeConfig {
    /// A configuration scaled to `frac` of the real benchmark's 581,012
    /// tuples (clamped to at least 1,000 so the seeding pass always has
    /// enough tuples per class).
    pub fn at_scale(frac: f64) -> Self {
        let rows = ((581_012.0 * frac) as usize).max(1_000);
        CovertypeConfig { num_rows: rows, ..CovertypeConfig::default() }
    }
}

/// Generates a covertype-like dataset calibrated to the paper's
/// Figure 8 statistics. See the module docs for the construction.
pub fn covertype_like<R: Rng + ?Sized>(rng: &mut R, config: &CovertypeConfig) -> Dataset {
    let k = config.class_freqs.len();
    assert!(k >= 2, "need at least two classes");
    let schema = Schema::new(
        (0..config.attrs.len()).map(|i| format!("attr{}", i + 1)),
        (0..k).map(|i| format!("cover{}", i + 1)),
    );
    let labels = sample_labels(rng, config.num_rows, &config.class_freqs);

    // Row indices per class, reshuffled per attribute for seeding.
    let mut rows_of_class: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (i, c) in labels.iter().enumerate() {
        rows_of_class[c.index()].push(i as u32);
    }

    let mut columns = Vec::with_capacity(config.attrs.len());
    for spec in &config.attrs {
        let col = generate_column(
            rng,
            spec,
            &labels,
            &mut rows_of_class,
            &config.class_freqs,
            config.min_piece_len,
        );
        columns.push(col);
    }

    Dataset::from_columns(schema, columns, labels)
}

/// The per-value plan for one attribute.
enum ValuePlan {
    /// Monochromatic: only tuples of this class may carry the value.
    Mono(ClassId),
    /// Mixed: tuples of any of these (≥ 2) classes may carry the value.
    Mixed(Vec<ClassId>),
}

fn generate_column<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &CovertypeAttrSpec,
    labels: &[ClassId],
    rows_of_class: &mut [Vec<u32>],
    class_freqs: &[f64],
    min_piece_len: usize,
) -> Vec<f64> {
    let k = class_freqs.len();
    let n = labels.len();
    assert!(
        spec.num_distinct <= spec.range_width,
        "cannot place {} distinct values on a width-{} grid",
        spec.num_distinct,
        spec.range_width
    );
    assert!(spec.num_distinct >= 2, "need at least two distinct values");

    // --- 1. Choose which grid positions occur. -------------------------
    let values = choose_grid_values(rng, spec.range_width, spec.num_distinct);

    // --- 2. Partition sorted values into mono segments and mixed runs. -
    let plan = plan_segments(rng, spec, min_piece_len, &values, class_freqs, rows_of_class);

    // --- 3 + 4. Seed every value, then fill the remaining tuples. ------
    let mut col = vec![f64::NAN; n];
    for list in rows_of_class.iter_mut() {
        list.shuffle(rng);
    }
    // Cursor per class into its (shuffled) row list.
    let mut cursor = vec![0usize; k];
    let mut pin = |class: usize, value: f64, col: &mut [f64]| -> bool {
        let list = &rows_of_class[class];
        while cursor[class] < list.len() {
            let row = list[cursor[class]] as usize;
            cursor[class] += 1;
            if col[row].is_nan() {
                col[row] = value;
                return true;
            }
        }
        false
    };

    for (vi, p) in plan.iter().enumerate() {
        let v = values[vi];
        match p {
            ValuePlan::Mono(c) => {
                // One tuple of the owning class realizes the value.
                let _ = pin(c.index(), v, &mut col);
            }
            ValuePlan::Mixed(classes) => {
                // Two tuples of two different classes make it non-mono.
                let mut placed = 0;
                for c in classes.iter().take(2) {
                    if pin(c.index(), v, &mut col) {
                        placed += 1;
                    }
                }
                // Fall back to any class with spare tuples.
                let mut ci = 0;
                while placed < 2 && ci < k {
                    if classes.iter().all(|c| c.index() != ci) && pin(ci, v, &mut col) {
                        placed += 1;
                    }
                    ci += 1;
                }
            }
        }
    }

    // Candidate values per class: mono values owned by the class plus
    // mixed values that allow it.
    let mut candidates: Vec<Vec<f64>> = vec![Vec::new(); k];
    for (vi, p) in plan.iter().enumerate() {
        let v = values[vi];
        match p {
            ValuePlan::Mono(c) => candidates[c.index()].push(v),
            ValuePlan::Mixed(classes) => {
                for c in classes {
                    candidates[c.index()].push(v);
                }
            }
        }
    }
    // Every class must be able to draw a value. Classes with an empty
    // candidate set adopt the globally most permissive mixed values; if
    // there are no mixed values at all, widen a random mono value into
    // a mixed one (extremely unlikely with the shipped specs).
    let all_mixed: Vec<f64> = plan
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, ValuePlan::Mixed(_)))
        .map(|(vi, _)| values[vi])
        .collect();
    for cand in candidates.iter_mut() {
        if cand.is_empty() {
            if all_mixed.is_empty() {
                cand.push(values[0]);
            } else {
                cand.extend(all_mixed.iter().take(8).copied());
            }
        }
    }

    for (row, c) in labels.iter().enumerate() {
        if col[row].is_nan() {
            let cand = &candidates[c.index()];
            col[row] = cand[rng.gen_range(0..cand.len())];
        }
    }
    col
}

/// Chooses `num_distinct` sorted grid positions in `[0, width)`,
/// always including both endpoints (so the realized dynamic-range
/// width matches the spec exactly).
fn choose_grid_values<R: Rng + ?Sized>(rng: &mut R, width: usize, num_distinct: usize) -> Vec<f64> {
    if num_distinct == width {
        return (0..width).map(|v| v as f64).collect();
    }
    // Sample the interior positions without replacement.
    let mut interior: Vec<usize> = (1..width - 1).collect();
    interior.shuffle(rng);
    let mut chosen: Vec<usize> = interior[..num_distinct - 2].to_vec();
    chosen.push(0);
    chosen.push(width - 1);
    chosen.sort_unstable();
    chosen.into_iter().map(|v| v as f64).collect()
}

/// Lays out mono segments and mixed values over the sorted value
/// sequence and assigns classes, honouring per-class tuple budgets so
/// the seeding pass cannot run out of tuples.
fn plan_segments<R: Rng + ?Sized>(
    rng: &mut R,
    spec: &CovertypeAttrSpec,
    min_piece_len: usize,
    values: &[f64],
    class_freqs: &[f64],
    rows_of_class: &[Vec<u32>],
) -> Vec<ValuePlan> {
    let k = class_freqs.len();
    let nd = values.len();
    let target_mono = ((spec.pct_mono_values * nd as f64).round() as usize).min(nd);
    let pieces = spec.num_mono_pieces;

    if pieces == 0 || target_mono == 0 {
        return mixed_only_plan(rng, nd, k, class_freqs);
    }

    // Piece lengths: randomized around the mean, each >= min_piece_len,
    // summing to target_mono.
    let mean = (target_mono as f64 / pieces as f64).max(min_piece_len as f64);
    let mut lens: Vec<usize> = (0..pieces)
        .map(|_| {
            let jitter = rng.gen_range(0.7..1.3);
            ((mean * jitter).round() as usize).max(min_piece_len)
        })
        .collect();
    rebalance(&mut lens, target_mono, min_piece_len);

    // Mixed budget: every interior gap needs >= 1 mixed value.
    let mixed_total = nd - lens.iter().sum::<usize>();
    let gaps = pieces + 1;
    let interior = pieces.saturating_sub(1);
    assert!(
        mixed_total >= interior,
        "spec leaves too few mixed values to separate {pieces} pieces"
    );
    let mut gap_lens = vec![0usize; gaps];
    for g in gap_lens.iter_mut().take(pieces).skip(1) {
        *g = 1;
    }
    let mut spare = mixed_total - interior;
    while spare > 0 {
        let g = rng.gen_range(0..gaps);
        gap_lens[g] += 1;
        spare -= 1;
    }

    // Per-class seeding budget: tuples of the class not yet consumed by
    // this attribute (each mono value consumes one; each mixed value
    // consumes at most one per class).
    let mut budget: Vec<isize> = rows_of_class.iter().map(|r| r.len() as isize).collect();
    // Reserve capacity for mixed seeding (2 tuples per mixed value,
    // spread over classes roughly by frequency — keep it conservative).
    for b in budget.iter_mut() {
        *b -= (2 * mixed_total / k) as isize;
    }

    // Assign a class to each piece, excluding classes whose budget
    // cannot cover the piece, and avoiding giving adjacent pieces the
    // same class when possible (purely cosmetic; ChooseMaxMP separates
    // them via the intervening mixed values anyway).
    let mut piece_class = Vec::with_capacity(pieces);
    let mut prev: Option<usize> = None;
    for &len in &lens {
        let choice =
            weighted_pick(rng, class_freqs, |c| budget[c] >= len as isize && prev != Some(c))
                .or_else(|| weighted_pick(rng, class_freqs, |c| budget[c] >= len as isize))
                .or_else(|| weighted_pick(rng, class_freqs, |_| true))
                .expect("at least one class exists");
        budget[choice] -= len as isize;
        piece_class.push(ClassId(choice as u16));
        prev = Some(choice);
    }

    // Interleave: gap 0, piece 0, gap 1, piece 1, ..., gap P.
    let mut plan = Vec::with_capacity(nd);
    for i in 0..pieces {
        extend_mixed(rng, &mut plan, gap_lens[i], k, class_freqs);
        for _ in 0..lens[i] {
            plan.push(ValuePlan::Mono(piece_class[i]));
        }
    }
    extend_mixed(rng, &mut plan, gap_lens[pieces], k, class_freqs);
    debug_assert_eq!(plan.len(), nd);
    plan
}

fn mixed_only_plan<R: Rng + ?Sized>(
    rng: &mut R,
    nd: usize,
    k: usize,
    class_freqs: &[f64],
) -> Vec<ValuePlan> {
    let mut plan = Vec::with_capacity(nd);
    extend_mixed(rng, &mut plan, nd, k, class_freqs);
    plan
}

/// Appends `count` mixed values, each allowing 2–3 distinct classes
/// drawn by frequency.
fn extend_mixed<R: Rng + ?Sized>(
    rng: &mut R,
    plan: &mut Vec<ValuePlan>,
    count: usize,
    k: usize,
    class_freqs: &[f64],
) {
    for _ in 0..count {
        let want = if k > 2 && rng.gen_bool(0.3) { 3 } else { 2 };
        let mut classes: Vec<ClassId> = Vec::with_capacity(want);
        while classes.len() < want.min(k) {
            let c = weighted_pick(rng, class_freqs, |c| classes.iter().all(|x| x.index() != c))
                .expect("classes remain");
            classes.push(ClassId(c as u16));
        }
        plan.push(ValuePlan::Mixed(classes));
    }
}

/// Adjusts `lens` so it sums to `target` while keeping each entry at
/// least `min_len`.
fn rebalance(lens: &mut [usize], target: usize, min_len: usize) {
    let mut sum: usize = lens.iter().sum();
    let n = lens.len();
    let mut i = 0;
    while sum != target {
        if sum < target {
            lens[i % n] += 1;
            sum += 1;
        } else if lens[i % n] > min_len {
            lens[i % n] -= 1;
            sum -= 1;
        }
        i += 1;
        // Safety valve: if every piece is at min_len and we still
        // exceed the target, the caller's spec was infeasible; keep the
        // minimal layout.
        if sum > target && lens.iter().all(|&l| l <= min_len) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use crate::stats::AttrStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> CovertypeConfig {
        CovertypeConfig { num_rows: 20_000, ..CovertypeConfig::default() }
    }

    #[test]
    fn generated_stats_track_figure8_targets() {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = small_config();
        let d = covertype_like(&mut rng, &cfg);
        assert_eq!(d.num_rows(), 20_000);
        assert_eq!(d.num_attrs(), 10);
        let stats = AttrStats::compute_all(&d, 1.0, cfg.min_piece_len);
        for (s, spec) in stats.iter().zip(&cfg.attrs) {
            assert_eq!(s.range_width, spec.range_width, "attr {:?} width", s.attr);
            assert_eq!(s.num_distinct, spec.num_distinct, "attr {:?} distinct", s.attr);
            // Piece structure is realized exactly by the seeding pass.
            assert_eq!(s.num_mono_pieces, spec.num_mono_pieces, "attr {:?} pieces", s.attr);
            assert!(
                (s.pct_mono_values - spec.pct_mono_values).abs() < 0.02,
                "attr {:?}: pct {} vs target {}",
                s.attr,
                s.pct_mono_values,
                spec.pct_mono_values
            );
        }
    }

    #[test]
    fn discontinuities_match_figure11() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = small_config();
        let d = covertype_like(&mut rng, &cfg);
        let stats = AttrStats::compute_all(&d, 1.0, cfg.min_piece_len);
        // Figure 11 column 2 = width - distinct.
        let expected = [22, 0, 0, 847, 75, 1333, 48, 70, 0, 1347];
        for (s, e) in stats.iter().zip(expected) {
            assert_eq!(s.num_discontinuities, e, "attr {:?}", s.attr);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = CovertypeConfig { num_rows: 3_000, ..CovertypeConfig::default() };
        let d1 = covertype_like(&mut StdRng::seed_from_u64(5), &cfg);
        let d2 = covertype_like(&mut StdRng::seed_from_u64(5), &cfg);
        assert_eq!(d1, d2);
        let d3 = covertype_like(&mut StdRng::seed_from_u64(6), &cfg);
        assert_ne!(d1.column(AttrId(0)), d3.column(AttrId(0)));
    }

    #[test]
    fn at_scale_clamps_row_count() {
        assert_eq!(CovertypeConfig::at_scale(1.0).num_rows, 581_012);
        assert_eq!(CovertypeConfig::at_scale(0.0).num_rows, 1_000);
    }

    #[test]
    fn all_labels_in_range_and_no_nan() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = CovertypeConfig { num_rows: 5_000, ..CovertypeConfig::default() };
        let d = covertype_like(&mut rng, &cfg);
        for a in d.schema().attrs() {
            assert!(d.column(a).iter().all(|v| v.is_finite()));
        }
        assert!(d.labels().iter().all(|c| c.index() < 7));
    }

    #[test]
    fn rebalance_hits_target() {
        let mut lens = vec![10, 10, 10];
        rebalance(&mut lens, 25, 5);
        assert_eq!(lens.iter().sum::<usize>(), 25);
        assert!(lens.iter().all(|&l| l >= 5));

        let mut lens = vec![5, 5];
        rebalance(&mut lens, 30, 5);
        assert_eq!(lens.iter().sum::<usize>(), 30);
    }
}
