//! # ppdt-obs
//!
//! Lightweight instrumentation for the custodian pipeline: scoped
//! wall-clock [`phase`] timers, global pipeline [`Counter`]s, and
//! peak-RSS sampling, all aggregated into a serializable
//! [`MetricsSnapshot`].
//!
//! Instrumentation is **off by default** and costs one relaxed atomic
//! load per probe while disabled, so library code can stay
//! instrumented permanently. Benchmarks (and anything else that wants
//! numbers) opt in with [`set_enabled`]:
//!
//! ```
//! ppdt_obs::reset();
//! ppdt_obs::set_enabled(true);
//! {
//!     let _t = ppdt_obs::phase("encode");
//!     ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, 1_000);
//! }
//! let snap = ppdt_obs::snapshot();
//! assert_eq!(snap.counters[ppdt_obs::Counter::RowsEncoded.index()].value, 1_000);
//! assert_eq!(snap.phases[0].name, "encode");
//! assert!(snap.phases[0].seconds >= 0.0);
//! ppdt_obs::set_enabled(false);
//! ```
//!
//! Phase timers aggregate by name: every `phase("encode")` guard adds
//! its elapsed wall-clock time to the same row. Phases freely nest and
//! overlap — a `"risk"` phase typically contains many `"encode"` and
//! `"attack"` phases, and guards dropped on worker threads all count —
//! so per-phase totals are *inclusive* and can exceed both each other
//! and the process wall-clock. Treat them as "time spent inside this
//! stage, summed over threads", not as a partition of the run.
//!
//! The registry is process-global. Concurrent snapshots are safe, but
//! benchmark binaries that want per-run numbers should [`reset`]
//! between runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hist;

pub use hist::{AtomicLogHistogram, LogHistogram};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Global enable flag; all probes are near-free while this is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Pipeline counters, one atomic cell per [`Counter`] variant.
#[allow(clippy::declare_interior_mutable_const)]
static COUNTERS: [AtomicU64; Counter::ALL.len()] = {
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; Counter::ALL.len()]
};

/// Phase accumulator rows: `(name, total nanoseconds, calls)`.
/// Locked only when a guard drops or a snapshot is taken, never on
/// the disabled path.
static PHASES: Mutex<Vec<(&'static str, u64, u64)>> = Mutex::new(Vec::new());

/// Turns instrumentation on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all counters and phase totals (the enable flag is kept).
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    PHASES.lock().expect("phase registry poisoned").clear();
}

/// The events the pipeline counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Tuples passed through the dataset encoder (rows, not cells).
    RowsEncoded,
    /// Pieces materialized across all per-attribute transforms.
    PiecesDrawn,
    /// Candidate breakpoint positions examined by `plan_pieces`.
    BoundariesScanned,
    /// Randomized trials executed by the risk harness.
    TrialsRun,
    /// Split nodes decoded by the custodian's key.
    NodesDecoded,
    /// Extra transform-draw attempts consumed by the bounded-retry
    /// loop in `encode_attribute` (0 when every first draw validates).
    DrawRetries,
    /// Whole-dataset redraws consumed by the verified-encode loop
    /// (0 when the first encode verifies).
    VerifyRetries,
    /// Error-severity findings raised by the key/dataset audit.
    AuditViolations,
    /// Tuple visits performed by the tree builders' split-search scans
    /// (one per `(row, attribute)` pair examined — the miner's true
    /// workload, robust against timer resolution on fast hardware).
    SplitScanRows,
    /// Widest worker fan-out used by a mining call in this process
    /// (a high-water mark maintained with [`record_max`], not a sum).
    MiningThreads,
    /// Buffers served from a reuse pool instead of a fresh allocation
    /// (partition row vectors in the recursive builder, per-level scan
    /// arenas in the presorted builder).
    PoolReuseHits,
    /// HTTP requests fully parsed by the `ppdt-serve` daemon
    /// (including inline `/healthz` and `/metrics` hits; malformed
    /// requests that never parse are counted as [`Counter::HttpErrors`]
    /// only).
    HttpRequests,
    /// Requests rejected with `503 Retry-After` by the serve daemon —
    /// queue-full backpressure plus queue-deadline expiries.
    HttpRejected,
    /// Error responses (4xx/5xx other than overload 503s) written by
    /// the serve daemon.
    HttpErrors,
    /// Widest number of requests simultaneously inside the serve
    /// worker pool (a high-water mark via [`record_max`], not a sum).
    HttpInFlightPeak,
    /// Serve requests that found a compiled plan already in the
    /// daemon's plan cache (no key re-load, re-audit, or re-compile).
    PlanCacheHits,
    /// Serve requests that had to load, audit, and compile a key
    /// because no cached plan existed for its content id.
    PlanCacheMisses,
    /// Compiled plans evicted from the bounded plan cache to make room
    /// for a newer key.
    PlanCacheEvictions,
    /// Classify/decode-tree requests that reused a mined tree cached
    /// under the same `(key id, dataset digest)` pair instead of
    /// re-mining.
    TreeCacheHits,
    /// Requests served on an already-open keep-alive connection (the
    /// second and later requests on one socket).
    HttpKeepaliveReuses,
    /// Requests parsed while an earlier response on the same
    /// connection was still outstanding (HTTP/1.1 pipelining).
    HttpPipelinedRequests,
    /// Transfer-encoding chunks moved by streaming encode/classify
    /// requests (request chunks decoded plus response chunks written).
    StreamedChunks,
    /// Anti-entropy passes completed by the cluster sync loop (one per
    /// full sweep over the configured peer list).
    PeerSyncRounds,
    /// Key envelopes fetched from a peer and committed to the local
    /// store (anti-entropy pulls plus read-through fetches).
    PeerKeysFetched,
    /// Failed attempts to fetch a manifest or an envelope from a peer
    /// (each retry counts; a peer answering with an error counts too).
    PeerFetchFailures,
    /// Sync rounds that found a peer unreachable (manifest poll failed
    /// after retry) — the raw material of the per-peer health status.
    PeerUnreachable,
    /// Values pushed through the batched column paths of a compiled
    /// plan (`encode_column`/`decode_column` cells, not rows).
    BatchedValues,
    /// Piece lookups resolved by a compiled transform's direct-index
    /// breakpoint table (the dense, branch-free fast path).
    PieceLookupDirect,
    /// Piece lookups that fell back to binary search over `input_hi`
    /// (no table: sparse breakpoints, degenerate span, or a bucket the
    /// density heuristic rejected).
    PieceLookupBsearch,
}

impl Counter {
    /// Every counter, in [`Counter::index`] order.
    pub const ALL: [Counter; 29] = [
        Counter::RowsEncoded,
        Counter::PiecesDrawn,
        Counter::BoundariesScanned,
        Counter::TrialsRun,
        Counter::NodesDecoded,
        Counter::DrawRetries,
        Counter::VerifyRetries,
        Counter::AuditViolations,
        Counter::SplitScanRows,
        Counter::MiningThreads,
        Counter::PoolReuseHits,
        Counter::HttpRequests,
        Counter::HttpRejected,
        Counter::HttpErrors,
        Counter::HttpInFlightPeak,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::PlanCacheEvictions,
        Counter::TreeCacheHits,
        Counter::HttpKeepaliveReuses,
        Counter::HttpPipelinedRequests,
        Counter::StreamedChunks,
        Counter::PeerSyncRounds,
        Counter::PeerKeysFetched,
        Counter::PeerFetchFailures,
        Counter::PeerUnreachable,
        Counter::BatchedValues,
        Counter::PieceLookupDirect,
        Counter::PieceLookupBsearch,
    ];

    /// Stable position of this counter in [`Counter::ALL`] and in
    /// [`MetricsSnapshot::counters`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RowsEncoded => "rows_encoded",
            Counter::PiecesDrawn => "pieces_drawn",
            Counter::BoundariesScanned => "boundaries_scanned",
            Counter::TrialsRun => "trials_run",
            Counter::NodesDecoded => "nodes_decoded",
            Counter::DrawRetries => "draw_retries",
            Counter::VerifyRetries => "verify_retries",
            Counter::AuditViolations => "audit_violations",
            Counter::SplitScanRows => "split_scan_rows",
            Counter::MiningThreads => "mining_threads",
            Counter::PoolReuseHits => "pool_reuse_hits",
            Counter::HttpRequests => "http_requests",
            Counter::HttpRejected => "http_rejected",
            Counter::HttpErrors => "http_errors",
            Counter::HttpInFlightPeak => "http_in_flight_peak",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::PlanCacheEvictions => "plan_cache_evictions",
            Counter::TreeCacheHits => "tree_cache_hits",
            Counter::HttpKeepaliveReuses => "http_keepalive_reuses",
            Counter::HttpPipelinedRequests => "http_pipelined_requests",
            Counter::StreamedChunks => "streamed_chunks",
            Counter::PeerSyncRounds => "peer_sync_rounds",
            Counter::PeerKeysFetched => "peer_keys_fetched",
            Counter::PeerFetchFailures => "peer_fetch_failures",
            Counter::PeerUnreachable => "peer_unreachable",
            Counter::BatchedValues => "batched_values",
            Counter::PieceLookupDirect => "piece_lookup_direct",
            Counter::PieceLookupBsearch => "piece_lookup_bsearch",
        }
    }
}

/// Adds `n` to a counter. No-op while instrumentation is disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        COUNTERS[counter.index()].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises a counter to at least `n` (a high-water mark for gauge-like
/// counters such as [`Counter::MiningThreads`]). No-op while
/// instrumentation is disabled.
#[inline]
pub fn record_max(counter: Counter, n: u64) {
    if enabled() {
        COUNTERS[counter.index()].fetch_max(n, Ordering::Relaxed);
    }
}

/// Current value of a counter.
pub fn counter(counter: Counter) -> u64 {
    COUNTERS[counter.index()].load(Ordering::Relaxed)
}

/// Resolves the worker-thread count for a parallel stage. This is the
/// single thread-count policy for the whole workspace — the parallel
/// encoder, the risk Monte Carlo, the tree miners, and the attack
/// fan-outs all route through it, so one knob controls them all:
///
/// 1. `requested` — an explicit caller choice (e.g. the CLI's
///    `--mining-threads`) wins, clamped to at least 1;
/// 2. the `PPDT_THREADS` environment variable (a positive integer)
///    overrides the hardware default for every stage at once, which is
///    how nested parallel stages are kept from oversubscribing cores;
/// 3. otherwise [`std::thread::available_parallelism`], falling back
///    to 1 when the platform cannot report it (running serial is
///    always correct; guessing a wider fan-out is not).
///
/// Thread counts never influence results anywhere in the workspace —
/// every parallel stage is bit-identical to its serial path — so this
/// choice is purely a performance knob.
pub fn threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("PPDT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        // Malformed or zero values fall through to the hardware default.
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A scoped phase timer. Created by [`phase`]; on drop it adds the
/// elapsed wall-clock time to the named row of the global registry.
#[must_use = "the timer measures until it is dropped; bind it with `let _t = ...`"]
pub struct PhaseGuard {
    armed: Option<(&'static str, Instant)>,
}

/// Starts timing a named phase. While instrumentation is disabled the
/// guard is inert (no clock read, no lock).
#[inline]
pub fn phase(name: &'static str) -> PhaseGuard {
    let armed = enabled().then(|| (name, Instant::now()));
    PhaseGuard { armed }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let mut rows = PHASES.lock().expect("phase registry poisoned");
            match rows.iter_mut().find(|(n, _, _)| *n == name) {
                Some(row) => {
                    row.1 += nanos;
                    row.2 += 1;
                }
                None => rows.push((name, nanos, 1)),
            }
        }
    }
}

/// One phase's aggregate in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetric {
    /// Phase name as passed to [`phase`].
    pub name: String,
    /// Total wall-clock seconds across all guards with this name
    /// (inclusive; sums over threads).
    pub seconds: f64,
    /// Number of guards that completed.
    pub calls: u64,
}

/// One counter's value in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterMetric {
    /// Counter name (see [`Counter::name`]).
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// A point-in-time copy of every metric, ready for serialization.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether instrumentation was enabled when the snapshot was taken.
    pub enabled: bool,
    /// All counters, in [`Counter::ALL`] order (zero entries included
    /// so the schema is stable).
    pub counters: Vec<CounterMetric>,
    /// Phase rows in first-recorded order; empty when nothing ran.
    pub phases: Vec<PhaseMetric>,
    /// Peak resident set size of the process in bytes, if the platform
    /// exposes it (Linux `VmHWM`); `None` elsewhere.
    pub peak_rss_bytes: Option<u64>,
}

/// Captures the current counters, phase totals, and peak RSS.
pub fn snapshot() -> MetricsSnapshot {
    let counters = Counter::ALL
        .iter()
        .map(|&c| CounterMetric { name: c.name().to_string(), value: counter(c) })
        .collect();
    let phases = PHASES
        .lock()
        .expect("phase registry poisoned")
        .iter()
        .map(|&(name, nanos, calls)| PhaseMetric {
            name: name.to_string(),
            seconds: nanos as f64 / 1e9,
            calls,
        })
        .collect();
    MetricsSnapshot { enabled: enabled(), counters, phases, peak_rss_bytes: peak_rss_bytes() }
}

/// Peak resident set size in bytes, read from `/proc/self/status`
/// (`VmHWM`). Returns `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and `cargo test` runs tests on
    // threads of one process, so everything that toggles global state
    // lives in this single test.
    #[test]
    fn counters_phases_and_snapshot() {
        reset();
        set_enabled(false);

        // Disabled probes are inert.
        add(Counter::RowsEncoded, 5);
        {
            let _t = phase("encode");
        }
        assert_eq!(counter(Counter::RowsEncoded), 0);
        assert!(snapshot().phases.is_empty());

        set_enabled(true);
        add(Counter::RowsEncoded, 5);
        add(Counter::RowsEncoded, 2);
        add(Counter::TrialsRun, 1);
        {
            let _t = phase("encode");
            let _inner = phase("mine");
        }
        {
            let _t = phase("encode");
        }

        let snap = snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.counters.len(), Counter::ALL.len());
        assert_eq!(snap.counters[Counter::RowsEncoded.index()].value, 7);
        assert_eq!(snap.counters[Counter::TrialsRun.index()].value, 1);
        assert_eq!(snap.counters[Counter::PiecesDrawn.index()].value, 0);

        let encode = snap.phases.iter().find(|p| p.name == "encode").expect("encode row");
        assert_eq!(encode.calls, 2);
        assert!(encode.seconds >= 0.0);
        assert!(snap.phases.iter().any(|p| p.name == "mine"));

        // record_max is a high-water mark, not a sum.
        record_max(Counter::MiningThreads, 3);
        record_max(Counter::MiningThreads, 2);
        assert_eq!(counter(Counter::MiningThreads), 3);

        // threads(): explicit request wins; PPDT_THREADS overrides the
        // hardware default; malformed values fall through. The env var
        // is process-global, so this probe lives in the single
        // global-state test too. Thread counts never change outputs,
        // so other tests racing a read here can at worst run serial.
        assert_eq!(threads(Some(3)), 3);
        assert_eq!(threads(Some(0)), 1);
        std::env::set_var("PPDT_THREADS", "2");
        assert_eq!(threads(None), 2);
        assert_eq!(threads(Some(5)), 5);
        std::env::set_var("PPDT_THREADS", "zero");
        assert!(threads(None) >= 1);
        std::env::remove_var("PPDT_THREADS");
        assert!(threads(None) >= 1);

        // Concurrent updates from worker threads all land.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _t = phase("worker");
                    add(Counter::PiecesDrawn, 10);
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.counters[Counter::PiecesDrawn.index()].value, 40);
        assert_eq!(snap.phases.iter().find(|p| p.name == "worker").unwrap().calls, 4);

        // Snapshot round-trips through serde.
        let json = serde_json_roundtrip(&snap);
        assert_eq!(json, snap);

        reset();
        set_enabled(false);
        assert_eq!(counter(Counter::RowsEncoded), 0);
    }

    fn serde_json_roundtrip(snap: &MetricsSnapshot) -> MetricsSnapshot {
        use serde::{Deserialize, Serialize};
        MetricsSnapshot::from_value(&snap.to_value()).expect("snapshot round-trips")
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test process surely holds > 64 KiB and < 1 TiB.
            assert!(bytes > 64 * 1024, "{bytes}");
            assert!(bytes < 1 << 40, "{bytes}");
        }
    }

    #[test]
    fn counter_names_are_stable() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "rows_encoded",
                "pieces_drawn",
                "boundaries_scanned",
                "trials_run",
                "nodes_decoded",
                "draw_retries",
                "verify_retries",
                "audit_violations",
                "split_scan_rows",
                "mining_threads",
                "pool_reuse_hits",
                "http_requests",
                "http_rejected",
                "http_errors",
                "http_in_flight_peak",
                "plan_cache_hits",
                "plan_cache_misses",
                "plan_cache_evictions",
                "tree_cache_hits",
                "http_keepalive_reuses",
                "http_pipelined_requests",
                "streamed_chunks",
                "peer_sync_rounds",
                "peer_keys_fetched",
                "peer_fetch_failures",
                "peer_unreachable",
                "batched_values",
                "piece_lookup_direct",
                "piece_lookup_bsearch"
            ]
        );
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
