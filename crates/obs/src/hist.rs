//! Log-bucketed latency histograms — exact-by-construction quantiles
//! with a pinned relative-error bound.
//!
//! The serve daemon's `/metrics` and the `ppdt-bencher` open-loop
//! load generator both need percentiles (p50/p99/p999) over millions
//! of latency samples without keeping the samples. This module is the
//! one shared implementation: an HDR-style histogram whose buckets
//! are exact below [`LINEAR_MAX`] and then grow geometrically with
//! [`SUB_BUCKETS`] linear sub-buckets per power of two, so every
//! bucket's width is at most `value / SUB_BUCKETS` — a quantile read
//! back from the histogram is **at least** the exact sample quantile
//! and overshoots it by at most one part in [`SUB_BUCKETS`] (≈ 1.6%).
//! That bound is not a heuristic; it is pinned by a unit test against
//! a sorted-vector oracle.
//!
//! Two flavors share the bucket layout:
//!
//! * [`LogHistogram`] — plain counters for single-threaded recording
//!   (the bencher's per-worker records) and for snapshots; supports
//!   [`LogHistogram::merge`], which is exactly equivalent to having
//!   recorded both sample sets into one histogram (also pinned by
//!   test).
//! * [`AtomicLogHistogram`] — relaxed-atomic counters for concurrent
//!   recording on the serve hot path; [`AtomicLogHistogram::snapshot`]
//!   produces a [`LogHistogram`] to query.
//!
//! Values are plain `u64`s — the callers record microseconds, but the
//! histogram does not care. Values above [`MAX_TRACKABLE`] (~2^38,
//! about 76 hours in µs) clamp into the last bucket; the exact
//! minimum and maximum are tracked separately, so `quantile(0.0)` and
//! `quantile(1.0)` are always exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of linear sub-buckets per power of two, as a power of two.
pub const SUB_BITS: u32 = 6;

/// Linear sub-buckets per octave (`2^SUB_BITS`); also the relative
/// error denominator: a quantile overshoots by at most `1/SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Values below this are counted in width-1 buckets (exact).
pub const LINEAR_MAX: u64 = SUB_BUCKETS;

/// Largest value with its own bucket; larger values clamp into the
/// final bucket (min/max stay exact regardless).
pub const MAX_TRACKABLE: u64 = (1 << 38) - 1;

/// Highest bit index that still gets dedicated buckets (`2^38 - 1`).
const MAX_MSB: u64 = 37;

/// Total bucket count: `SUB_BUCKETS` exact buckets plus `SUB_BUCKETS`
/// per octave from `2^SUB_BITS` up to `2^(MAX_MSB+1)`.
const N_BUCKETS: usize = (SUB_BUCKETS + (MAX_MSB - SUB_BITS as u64 + 1) * SUB_BUCKETS) as usize;

/// Bucket index for a value. Monotone non-decreasing in `v`.
#[inline]
fn index_for(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let v = v.min(MAX_TRACKABLE);
    let msb = 63 - u64::from(v.leading_zeros());
    let shift = msb - u64::from(SUB_BITS);
    let sub = (v >> shift) - SUB_BUCKETS;
    (SUB_BUCKETS + shift * SUB_BUCKETS + sub) as usize
}

/// Smallest value mapping into bucket `i`.
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let shift = i / SUB_BUCKETS - 1;
    let pos = i % SUB_BUCKETS;
    (SUB_BUCKETS + pos) << shift
}

/// Largest value mapping into bucket `i` (the value a quantile read
/// reports, so reads never under-estimate).
#[inline]
fn bucket_high(i: usize) -> u64 {
    let i64 = i as u64;
    if i64 < SUB_BUCKETS {
        return i64;
    }
    let shift = i64 / SUB_BUCKETS - 1;
    bucket_low(i) + (1 << shift) - 1
}

/// A mergeable log-bucketed histogram; see the module docs for the
/// error bound.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Box<[u64; N_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram { counts: Box::new([0; N_BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_for(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound on the
    /// exact sample quantile that overshoots by at most one part in
    /// [`SUB_BUCKETS`]. `q = 0` returns the exact minimum, `q = 1`
    /// the exact maximum; an empty histogram returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        // The rank-th smallest sample, 1-based, clamped to the range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The overflow bucket has no meaningful upper bound;
                // the exact tracked max is the tight one there.
                if i == N_BUCKETS - 1 {
                    return self.max;
                }
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`. Exactly equivalent
    /// to having recorded both sample sets into one histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Concurrent recorder sharing [`LogHistogram`]'s bucket layout:
/// relaxed atomic adds on the hot path, [`AtomicLogHistogram::snapshot`]
/// to query. A snapshot taken while writers are active is a
/// consistent-enough point-in-time view for metrics (each sample is
/// atomic; cross-field skew is at most the writers in flight).
#[derive(Debug)]
pub struct AtomicLogHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicLogHistogram {
    fn default() -> Self {
        AtomicLogHistogram::new()
    }
}

impl AtomicLogHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicLogHistogram {
        AtomicLogHistogram {
            counts: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (relaxed atomics; safe from any thread).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[index_for(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time plain copy to query quantiles from.
    pub fn snapshot(&self) -> LogHistogram {
        let mut counts = Box::new([0u64; N_BUCKETS]);
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        LogHistogram {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random u64 stream (splitmix64) — the
    /// histogram tests need arbitrary-looking values, not a
    /// statistical RNG.
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    /// Exact sample quantile: the `ceil(q*n)`-th smallest (1-based).
    fn oracle(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as f64;
        let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_boundaries_are_monotone_and_contiguous() {
        // Contiguity: every bucket starts one past the previous end.
        for i in 1..N_BUCKETS {
            assert_eq!(
                bucket_low(i),
                bucket_high(i - 1) + 1,
                "gap or overlap between buckets {} and {}",
                i - 1,
                i
            );
        }
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_high(N_BUCKETS - 1), MAX_TRACKABLE);

        // index_for is monotone and inverts the bounds, across the
        // linear range, every octave edge, and arbitrary values.
        let mut probes: Vec<u64> = (0..2 * LINEAR_MAX).collect();
        for bit in SUB_BITS as u64..=MAX_MSB + 2 {
            let p = 1u64 << bit;
            probes.extend_from_slice(&[p - 1, p, p + 1]);
        }
        let mut mix = Mix(7);
        for _ in 0..10_000 {
            probes.push(mix.next() >> (mix.next() % 40));
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for &v in &probes {
            let i = index_for(v);
            assert!(i >= last, "index_for not monotone at {v}");
            assert!(i < N_BUCKETS);
            if v <= MAX_TRACKABLE {
                assert!(bucket_low(i) <= v && v <= bucket_high(i), "{v} outside bucket {i}");
                // Width never exceeds the 1/SUB_BUCKETS error bound.
                let width = bucket_high(i) - bucket_low(i);
                assert!(
                    width == 0 || width <= v / SUB_BUCKETS,
                    "bucket {i} width {width} too wide for {v}"
                );
            } else {
                assert_eq!(i, N_BUCKETS - 1, "overflow must clamp to the last bucket");
            }
            last = i;
        }
    }

    #[test]
    fn quantiles_match_sorted_vector_oracle_within_bound() {
        // Three shapes: uniform-ish, heavy-tailed, tiny exact values.
        type Shape = Box<dyn Fn(&mut Mix) -> u64>;
        let mut mix = Mix(42);
        let shapes: [Shape; 3] = [
            Box::new(|m| m.next() % 1_000_000),
            Box::new(|m| 1u64 << (m.next() % 30)),
            Box::new(|m| m.next() % 50),
        ];
        for (si, shape) in shapes.iter().enumerate() {
            let mut h = LogHistogram::new();
            let mut samples: Vec<u64> = (0..20_000).map(|_| shape(&mut mix)).collect();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            assert_eq!(h.count(), samples.len() as u64);
            assert_eq!(h.min(), samples[0]);
            assert_eq!(h.max(), *samples.last().unwrap());
            let exact_sum: u64 = samples.iter().sum();
            assert_eq!(h.sum(), exact_sum);
            for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                let exact = oracle(&samples, q);
                let approx = h.quantile(q);
                assert!(approx >= exact, "shape {si} q={q}: {approx} < exact {exact}");
                let bound = exact as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0;
                assert!(
                    approx as f64 <= bound,
                    "shape {si} q={q}: {approx} overshoots exact {exact} past {bound}"
                );
            }
        }
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything() {
        let mut mix = Mix(3);
        let xs: Vec<u64> = (0..5_000).map(|_| mix.next() % 10_000_000).collect();
        let ys: Vec<u64> = (0..3_000).map(|_| mix.next() % 100).collect();
        let mut hx = LogHistogram::new();
        let mut hy = LogHistogram::new();
        let mut both = LogHistogram::new();
        for &x in &xs {
            hx.record(x);
            both.record(x);
        }
        for &y in &ys {
            hy.record(y);
            both.record(y);
        }
        hx.merge(&hy);
        // Structural equality: identical buckets AND identical
        // count/sum/min/max, not merely matching quantiles.
        assert_eq!(hx, both);
        // Merging an empty histogram is the identity.
        hx.merge(&LogHistogram::new());
        assert_eq!(hx, both);
    }

    #[test]
    fn empty_and_edge_behavior() {
        let h = LogHistogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.sum()), (0, 0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);

        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);

        // Values past MAX_TRACKABLE clamp into the last bucket but
        // keep the exact max.
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn atomic_histogram_matches_plain_under_concurrency() {
        let atomic = AtomicLogHistogram::new();
        let mut plain = LogHistogram::new();
        let per_thread: Vec<Vec<u64>> = (0..4u64)
            .map(|t| {
                let mut mix = Mix(t);
                (0..2_500).map(|_| mix.next() % 1_000_000).collect()
            })
            .collect();
        for chunk in &per_thread {
            for &v in chunk {
                plain.record(v);
            }
        }
        std::thread::scope(|s| {
            let atomic = &atomic;
            for chunk in &per_thread {
                s.spawn(move || {
                    for &v in chunk {
                        atomic.record(v);
                    }
                });
            }
        });
        assert_eq!(atomic.snapshot(), plain);
        assert_eq!(atomic.count(), plain.count());
    }
}
