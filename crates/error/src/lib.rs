//! # ppdt-error
//!
//! The workspace-wide typed error taxonomy. The paper's custodian
//! scenario is built around an *untrusted* boundary: the custodian
//! ships `D'` to a miner she does not trust and later receives `T'`
//! back, so corrupted keys, tampered trees, and malformed CSVs are the
//! expected case, not the exception. Every crate in the workspace
//! reports hostile-input failures as a [`PpdtError`] carrying the
//! attribute / piece / row context needed to act on the report,
//! instead of panicking mid-pipeline.
//!
//! Errors are grouped into [`ErrorCategory`]s, each with a stable,
//! documented process [`ErrorCategory::exit_code`] used by the `ppdt`
//! CLI and a stable [`ErrorCategory::http_status`] used by the
//! `ppdt-serve` daemon (see the README error-code table):
//!
//! | exit | HTTP | category | meaning |
//! |-----:|-----:|----------|---------|
//! | 1    | 500  | internal | unexpected internal failure (a bug) |
//! | 2    | 400  | usage    | bad arguments / invalid configuration |
//! | 3    | 500  | io       | file system or serialization I/O |
//! | 4    | 409  | corrupt-key | key fails audit, or key/data mismatch |
//! | 5    | 424  | incompatible-tree | mined tree does not fit key or data |
//! | 6    | 422  | corrupt-data | malformed dataset cells / schema |
//!
//! `PpdtError` is `Serialize`/`Deserialize` so structured reports
//! (e.g. the audit subsystem's `AuditReport`) can embed errors
//! verbatim.
//!
//! The `io` category also covers *network* transport: the serve
//! daemon's loopback client and cluster peer machinery report
//! connect/read/write failures as [`PpdtError::Io`] with the peer's
//! `http://addr` as the path. They stay retryable-by-policy at the
//! call site (the peer sync loop backs off and retries; a 409
//! `corrupt-key`, by contrast, is a durable fact about a disk and is
//! never retried against the same replica).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// Coarse failure class, stable across [`PpdtError`] refactors. The
/// CLI maps each category to a distinct exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCategory {
    /// Bad arguments or invalid configuration values.
    Usage,
    /// File-system or serialization I/O failure.
    Io,
    /// A transform key failed validation, or does not match the data
    /// it is applied to.
    CorruptKey,
    /// A mined tree is incompatible with the key or the replay data.
    IncompatibleTree,
    /// Malformed dataset contents (cells, rows, headers, schema).
    CorruptData,
    /// An internal invariant failed — a bug, not a hostile input.
    Internal,
}

impl ErrorCategory {
    /// The documented process exit code for this category.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorCategory::Internal => 1,
            ErrorCategory::Usage => 2,
            ErrorCategory::Io => 3,
            ErrorCategory::CorruptKey => 4,
            ErrorCategory::IncompatibleTree => 5,
            ErrorCategory::CorruptData => 6,
        }
    }

    /// The documented HTTP status the `ppdt-serve` daemon answers with
    /// when a request fails with this category. This is the single
    /// category→status table for the workspace (the serve crate layers
    /// transport-level statuses — 404, 405, 413, 431, 503 — on top,
    /// but never remaps these):
    ///
    /// * usage → **400 Bad Request** — the client sent something the
    ///   endpoint cannot accept;
    /// * corrupt-data → **422 Unprocessable Content** — the request
    ///   parsed, but the dataset payload inside it is malformed;
    /// * corrupt-key → **409 Conflict** — the named server-side key is
    ///   corrupt or does not match the payload, so the request
    ///   conflicts with stored state;
    /// * incompatible-tree → **424 Failed Dependency** — the supplied
    ///   tree cannot be decoded/routed against the named key;
    /// * io / internal → **500 Internal Server Error** — the server's
    ///   own fault, never the client's.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCategory::Usage => 400,
            ErrorCategory::CorruptData => 422,
            ErrorCategory::CorruptKey => 409,
            ErrorCategory::IncompatibleTree => 424,
            ErrorCategory::Io => 500,
            ErrorCategory::Internal => 500,
        }
    }

    /// Stable snake_case name used in structured reports.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCategory::Usage => "usage",
            ErrorCategory::Io => "io",
            ErrorCategory::CorruptKey => "corrupt_key",
            ErrorCategory::IncompatibleTree => "incompatible_tree",
            ErrorCategory::CorruptData => "corrupt_data",
            ErrorCategory::Internal => "internal",
        }
    }
}

/// The workspace error type. Variants carry the attribute / piece /
/// row context of the failure so callers (and the CLI's stderr
/// rendering) can point at the offending part of the input.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PpdtError {
    /// A value lies outside the domain a transform is defined on —
    /// outside every piece's input range, or inside a permutation
    /// piece without being one of its recorded values.
    DomainViolation {
        /// Attribute index, when known at the failure site.
        attr: Option<usize>,
        /// Piece index within the attribute's transform, when known.
        piece: Option<usize>,
        /// The offending value.
        value: f64,
    },
    /// A transform key violates its structural invariants (interval
    /// overlap, broken bijection, non-finite entries, …).
    KeyCorrupt {
        /// Attribute index, when known.
        attr: Option<usize>,
        /// Piece index, when known.
        piece: Option<usize>,
        /// What invariant broke.
        detail: String,
    },
    /// A bounded-retry draw loop ran out of attempts.
    DrawExhausted {
        /// Attribute index, when the exhaustion is per-attribute.
        attr: Option<usize>,
        /// Attempts made before giving up.
        attempts: usize,
        /// Per-attempt failure reasons, in attempt order.
        reasons: Vec<String>,
    },
    /// Two artifacts that must agree structurally do not (e.g. a key
    /// with 3 transforms applied to a 5-attribute dataset).
    SchemaMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A mined tree cannot be decoded against this key/data (unknown
    /// attribute id, non-finite threshold, split that leaves a side
    /// empty on replay, …).
    TreeIncompatible {
        /// What made the tree incompatible.
        detail: String,
    },
    /// Malformed dataset contents: a bad cell, a ragged row, a
    /// duplicated header.
    DataCorrupt {
        /// 1-based source line / row number, when known.
        row: Option<usize>,
        /// 0-based column index, when known.
        column: Option<usize>,
        /// What is wrong with it.
        detail: String,
    },
    /// An input that must be non-empty was empty.
    EmptyInput {
        /// What was empty ("dataset", "attribute 3", …).
        what: String,
    },
    /// A configuration value is out of its documented range.
    InvalidConfig {
        /// The offending parameter.
        param: String,
        /// Why it was rejected.
        detail: String,
    },
    /// An I/O failure (message form, so the error stays `Clone` and
    /// serializable).
    Io {
        /// The path involved, when known.
        path: Option<String>,
        /// The underlying error message.
        detail: String,
    },
    /// An internal invariant failed; report as a bug.
    Internal {
        /// What failed.
        detail: String,
    },
}

impl PpdtError {
    /// The coarse category of this error (drives the CLI exit code).
    pub fn category(&self) -> ErrorCategory {
        match self {
            PpdtError::DomainViolation { .. } | PpdtError::KeyCorrupt { .. } => {
                ErrorCategory::CorruptKey
            }
            PpdtError::SchemaMismatch { .. } => ErrorCategory::CorruptKey,
            PpdtError::TreeIncompatible { .. } => ErrorCategory::IncompatibleTree,
            PpdtError::DataCorrupt { .. } | PpdtError::EmptyInput { .. } => {
                ErrorCategory::CorruptData
            }
            PpdtError::InvalidConfig { .. } => ErrorCategory::Usage,
            PpdtError::Io { .. } => ErrorCategory::Io,
            PpdtError::DrawExhausted { .. } | PpdtError::Internal { .. } => ErrorCategory::Internal,
        }
    }

    /// Fills in the attribute index on variants that carry one and do
    /// not have it yet (context enrichment as an error propagates up
    /// from piece level to key level).
    pub fn with_attr(mut self, a: usize) -> Self {
        match &mut self {
            PpdtError::DomainViolation { attr, .. }
            | PpdtError::KeyCorrupt { attr, .. }
            | PpdtError::DrawExhausted { attr, .. } => {
                attr.get_or_insert(a);
            }
            _ => {}
        }
        self
    }

    /// Fills in the piece index on variants that carry one and do not
    /// have it yet.
    pub fn with_piece(mut self, p: usize) -> Self {
        match &mut self {
            PpdtError::DomainViolation { piece, .. } | PpdtError::KeyCorrupt { piece, .. } => {
                piece.get_or_insert(p);
            }
            _ => {}
        }
        self
    }

    /// Convenience constructor for [`PpdtError::Io`] from a path and
    /// any displayable error.
    pub fn io(path: impl Into<String>, err: impl fmt::Display) -> Self {
        PpdtError::Io { path: Some(path.into()), detail: err.to_string() }
    }

    /// Convenience constructor for [`PpdtError::KeyCorrupt`] without
    /// positional context.
    pub fn key_corrupt(detail: impl Into<String>) -> Self {
        PpdtError::KeyCorrupt { attr: None, piece: None, detail: detail.into() }
    }

    /// Convenience constructor for [`PpdtError::Internal`].
    pub fn internal(detail: impl Into<String>) -> Self {
        PpdtError::Internal { detail: detail.into() }
    }
}

/// Renders `Some(i)` as ` <label> <i>` and `None` as nothing.
fn opt(f: &mut fmt::Formatter<'_>, label: &str, v: Option<usize>) -> fmt::Result {
    match v {
        Some(i) => write!(f, " {label} {i}"),
        None => Ok(()),
    }
}

impl fmt::Display for PpdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpdtError::DomainViolation { attr, piece, value } => {
                write!(f, "domain violation: value {value} not covered by the transform")?;
                opt(f, "of attribute", *attr)?;
                opt(f, "(piece", *piece)?;
                if piece.is_some() {
                    write!(f, ")")?;
                }
                Ok(())
            }
            PpdtError::KeyCorrupt { attr, piece, detail } => {
                write!(f, "corrupt key: {detail}")?;
                opt(f, "[attribute", *attr)?;
                opt(f, "piece", *piece)?;
                if attr.is_some() || piece.is_some() {
                    write!(f, "]")?;
                }
                Ok(())
            }
            PpdtError::DrawExhausted { attr, attempts, reasons } => {
                write!(f, "draw exhausted after {attempts} attempt(s)")?;
                opt(f, "on attribute", *attr)?;
                if let Some(last) = reasons.last() {
                    write!(f, "; last failure: {last}")?;
                }
                Ok(())
            }
            PpdtError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            PpdtError::TreeIncompatible { detail } => write!(f, "incompatible tree: {detail}"),
            PpdtError::DataCorrupt { row, column, detail } => {
                write!(f, "corrupt data: {detail}")?;
                opt(f, "[row", *row)?;
                opt(f, "column", *column)?;
                if row.is_some() || column.is_some() {
                    write!(f, "]")?;
                }
                Ok(())
            }
            PpdtError::EmptyInput { what } => write!(f, "empty input: {what}"),
            PpdtError::InvalidConfig { param, detail } => {
                write!(f, "invalid configuration: {param}: {detail}")
            }
            PpdtError::Io { path, detail } => match path {
                Some(p) => write!(f, "io error on {p}: {detail}"),
                None => write!(f, "io error: {detail}"),
            },
            PpdtError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for PpdtError {}

impl From<std::io::Error> for PpdtError {
    fn from(e: std::io::Error) -> Self {
        PpdtError::Io { path: None, detail: e.to_string() }
    }
}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, PpdtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_have_distinct_exit_codes() {
        let cats = [
            ErrorCategory::Usage,
            ErrorCategory::Io,
            ErrorCategory::CorruptKey,
            ErrorCategory::IncompatibleTree,
            ErrorCategory::CorruptData,
            ErrorCategory::Internal,
        ];
        let mut codes: Vec<i32> = cats.iter().map(|c| c.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), cats.len(), "exit codes must be distinct");
        assert!(codes.iter().all(|&c| (1..=6).contains(&c)));
    }

    #[test]
    fn every_category_maps_to_the_documented_http_status() {
        // Exhaustive: consume each category through a match so adding
        // a variant forces this test (and the table) to be revisited.
        let all = [
            ErrorCategory::Usage,
            ErrorCategory::Io,
            ErrorCategory::CorruptKey,
            ErrorCategory::IncompatibleTree,
            ErrorCategory::CorruptData,
            ErrorCategory::Internal,
        ];
        for cat in all {
            let expected = match cat {
                ErrorCategory::Usage => 400,
                ErrorCategory::CorruptData => 422,
                ErrorCategory::CorruptKey => 409,
                ErrorCategory::IncompatibleTree => 424,
                ErrorCategory::Io | ErrorCategory::Internal => 500,
            };
            assert_eq!(cat.http_status(), expected, "{}", cat.name());
            // Client faults are 4xx, server faults 5xx — nothing else.
            assert!((400..600).contains(&cat.http_status()), "{}", cat.name());
            let server_fault = matches!(cat, ErrorCategory::Io | ErrorCategory::Internal);
            assert_eq!(cat.http_status() >= 500, server_fault, "{}", cat.name());
        }
    }

    #[test]
    fn variant_categories_match_the_documented_table() {
        let dv = PpdtError::DomainViolation { attr: Some(1), piece: Some(2), value: 3.0 };
        assert_eq!(dv.category().exit_code(), 4);
        assert_eq!(PpdtError::key_corrupt("x").category().exit_code(), 4);
        assert_eq!(PpdtError::TreeIncompatible { detail: "x".into() }.category().exit_code(), 5);
        assert_eq!(
            PpdtError::DataCorrupt { row: None, column: None, detail: "x".into() }
                .category()
                .exit_code(),
            6
        );
        assert_eq!(
            PpdtError::InvalidConfig { param: "w".into(), detail: "x".into() }
                .category()
                .exit_code(),
            2
        );
        assert_eq!(PpdtError::io("f.csv", "gone").category().exit_code(), 3);
        assert_eq!(PpdtError::internal("bug").category().exit_code(), 1);
        assert_eq!(
            PpdtError::DrawExhausted { attr: None, attempts: 16, reasons: vec![] }
                .category()
                .exit_code(),
            1
        );
    }

    #[test]
    fn context_enrichment_fills_only_missing_fields() {
        let e = PpdtError::DomainViolation { attr: None, piece: Some(7), value: 1.0 };
        let e = e.with_attr(3).with_piece(9);
        assert_eq!(e, PpdtError::DomainViolation { attr: Some(3), piece: Some(7), value: 1.0 });
        // Variants without the field are untouched.
        let s = PpdtError::SchemaMismatch { detail: "d".into() }.with_attr(1);
        assert_eq!(s, PpdtError::SchemaMismatch { detail: "d".into() });
    }

    #[test]
    fn display_carries_positional_context() {
        let e = PpdtError::DomainViolation { attr: Some(2), piece: Some(0), value: 41.5 };
        let s = e.to_string();
        assert!(s.contains("41.5") && s.contains("attribute 2") && s.contains("piece 0"), "{s}");
        let d = PpdtError::DataCorrupt {
            row: Some(12),
            column: Some(3),
            detail: "not a finite number".into(),
        };
        let s = d.to_string();
        assert!(s.contains("row 12") && s.contains("column 3"), "{s}");
    }

    #[test]
    fn serde_roundtrip() {
        let e = PpdtError::DrawExhausted {
            attr: Some(1),
            attempts: 16,
            reasons: vec!["overlap".into(), "collision".into()],
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: PpdtError = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
