//! Cross-validation: parallel split search must be bit-identical to
//! serial — same nodes, same thresholds, same scores — for both
//! builders, every criterion, and every threshold policy, because each
//! worker scans a contiguous ascending attribute range and the serial
//! reduction re-applies the attr-major first-wins tie-break with the
//! same strict `<`. Mirror of `crates/transform/tests/parallel_serial.rs`.

use ppdt_data::gen::{census_like, random_dataset, RandomDatasetConfig};
use ppdt_data::Dataset;
use ppdt_tree::{tree_diff, trees_equal, SplitCriterion, ThresholdPolicy, TreeBuilder, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread counts under test: serial, the smallest genuine fan-out, and
/// more workers than most datasets have attributes (exercises range
/// clamping).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_thread_count_invariant(d: &Dataset, params: TreeParams, label: &str) {
    let serial = TreeBuilder::new(params).with_threads(Some(1)).fit(d);
    let serial_pre = TreeBuilder::new(params).with_threads(Some(1)).fit_presorted(d);
    assert!(
        trees_equal(&serial, &serial_pre),
        "{label}: presorted differs from recursive at 1 thread: {:?}",
        tree_diff(&serial, &serial_pre, 0.0)
    );
    for threads in THREAD_COUNTS {
        let b = TreeBuilder::new(params).with_threads(Some(threads));
        let fit = b.fit(d);
        assert!(
            trees_equal(&serial, &fit),
            "{label}: fit at {threads} threads differs: {:?}",
            tree_diff(&serial, &fit, 0.0)
        );
        let pre = b.fit_presorted(d);
        assert!(
            trees_equal(&serial, &pre),
            "{label}: fit_presorted at {threads} threads differs: {:?}",
            tree_diff(&serial, &pre, 0.0)
        );
    }
}

#[test]
fn parallel_matches_serial_on_seeded_random_datasets() {
    let mut rng = StdRng::seed_from_u64(11);
    for trial in 0..6 {
        let cfg = RandomDatasetConfig {
            num_rows: 300 + trial * 150,
            num_attrs: 2 + trial % 5,
            num_classes: 2 + trial % 3,
            value_range: 5 + (trial as u64 * 7) % 30,
        };
        let d = random_dataset(&mut rng, &cfg);
        for criterion in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            for policy in [ThresholdPolicy::DataValue, ThresholdPolicy::Midpoint] {
                let params = TreeParams {
                    criterion,
                    threshold_policy: policy,
                    min_samples_leaf: 1 + (trial as u32) % 3,
                    ..Default::default()
                };
                assert_thread_count_invariant(
                    &d,
                    params,
                    &format!("trial {trial} {criterion:?} {policy:?}"),
                );
            }
        }
    }
}

#[test]
fn parallel_matches_serial_above_the_fanout_gate() {
    // Large enough (rows × attrs ≥ the internal parallel gate) that
    // multi-thread runs actually take the scoped-thread path rather
    // than falling back to the serial loop.
    let mut rng = StdRng::seed_from_u64(21);
    let d = census_like(&mut rng, 4_000);
    for criterion in [SplitCriterion::Gini, SplitCriterion::Entropy] {
        let params = TreeParams::with_criterion(criterion);
        assert_thread_count_invariant(&d, params, &format!("census {criterion:?}"));
    }
}

#[test]
fn parallel_matches_serial_with_stopping_rules() {
    let mut rng = StdRng::seed_from_u64(31);
    let d = census_like(&mut rng, 2_500);
    for params in [
        TreeParams { max_depth: 4, ..Default::default() },
        TreeParams { min_samples_split: 40, ..Default::default() },
        TreeParams { min_impurity_decrease: 0.02, ..Default::default() },
        TreeParams { min_samples_leaf: 20, ..Default::default() },
    ] {
        assert_thread_count_invariant(&d, params, &format!("{params:?}"));
    }
}

#[test]
fn ppdt_threads_env_override_does_not_change_the_tree() {
    // PPDT_THREADS is process-global; this is safe to run alongside
    // the other tests because thread count never changes any output —
    // which is exactly what this test demonstrates.
    let mut rng = StdRng::seed_from_u64(41);
    let d = census_like(&mut rng, 1_500);
    let baseline = TreeBuilder::default().with_threads(Some(1)).fit(&d);
    std::env::set_var("PPDT_THREADS", "3");
    let under_env = TreeBuilder::default().fit(&d);
    let under_env_pre = TreeBuilder::default().fit_presorted(&d);
    std::env::remove_var("PPDT_THREADS");
    let default = TreeBuilder::default().fit(&d);
    for (t, label) in [
        (&under_env, "PPDT_THREADS=3 fit"),
        (&under_env_pre, "PPDT_THREADS=3 presorted"),
        (&default, "default fit"),
    ] {
        assert!(trees_equal(&baseline, t), "{label}: {:?}", tree_diff(&baseline, t, 0.0));
    }
}
