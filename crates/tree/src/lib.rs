//! # ppdt-tree
//!
//! A from-scratch decision-tree learner for the `ppdt` workspace.
//!
//! The paper's no-outcome-change guarantee (Section 4) holds for any
//! greedy tree builder that selects splits by the **gini index** or
//! **entropy**, because both criteria depend only on class-count
//! aggregates over the label runs of each attribute's sorted order —
//! which the piecewise transformations preserve. This crate provides
//! exactly such a builder, plus everything the experiments need around
//! it:
//!
//! * [`split`] — impurity metrics and the run-boundary split search
//!   (Lemma 2: optimal split points never fall inside a label run),
//! * [`builder`] — the recursive tree builder with C4.5-style
//!   stopping rules and threshold policies,
//! * [`tree`] — the tree structure, prediction, root-to-leaf path
//!   extraction (the unit of *output privacy* in Definition 3),
//! * [`decode`] — Theorem 2's construction: map each node's threshold
//!   through the custodian's inverse transformation,
//! * [`compare`] — exact and tolerant tree equality,
//! * [`prune`] — C4.5-style pessimistic error pruning (count-based,
//!   so pruning also commutes with the transformations).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod builder_fast;
pub mod compare;
pub mod decode;
pub mod dot;
pub mod eval;
pub mod importance;
pub mod prune;
pub mod rules;
pub mod split;
pub mod tree;

pub use builder::{ThresholdPolicy, TreeBuilder, TreeParams};
pub use compare::{tree_diff, trees_equal, trees_equal_eps};
pub use decode::decode_tree;
pub use dot::to_dot;
pub use eval::{cross_validate, evaluate, subset, train_test_split, ConfusionMatrix};
pub use importance::{feature_importance, importance_ranking};
pub use prune::prune_pessimistic;
pub use rules::{extract_rules, render_rules, Rule};
pub use split::{CandidatePolicy, SplitCriterion};
pub use tree::{DecisionTree, Node, PathCondition, PathOp, TreePath};
