//! Graphviz DOT export for decision trees — the custodian's "look at
//! what came back from the miner" tool. The encoded tree `T'` and the
//! decoded tree `S` render side by side nicely.

use std::fmt::Write as _;

use ppdt_data::Schema;

use crate::tree::{DecisionTree, Node};

/// Renders the tree as a Graphviz `digraph`.
///
/// Pass the schema to label nodes with attribute/class names; without
/// it, `A0`/`c0` style identifiers are used. Thresholds are printed
/// with up to 4 significant decimals (full precision is available via
/// the serde representation).
pub fn to_dot(tree: &DecisionTree, schema: Option<&Schema>) -> String {
    let mut out = String::from("digraph decision_tree {\n");
    out.push_str("  node [shape=box, fontname=\"Helvetica\"];\n");
    let mut next_id = 0usize;
    emit(&tree.root, schema, &mut next_id, &mut out);
    out.push_str("}\n");
    out
}

/// Emits `node` and its subtree; returns the node's DOT id.
fn emit(node: &Node, schema: Option<&Schema>, next_id: &mut usize, out: &mut String) -> usize {
    let id = *next_id;
    *next_id += 1;
    match node {
        Node::Leaf { label, class_counts } => {
            let name = schema
                .map(|s| s.class_name(*label).to_string())
                .unwrap_or_else(|| label.to_string());
            let _ = writeln!(
                out,
                "  n{id} [label=\"{name}\\n{class_counts:?}\", style=filled, fillcolor=lightgrey];"
            );
        }
        Node::Split { attr, threshold, left, right, .. } => {
            let name =
                schema.map(|s| s.attr_name(*attr).to_string()).unwrap_or_else(|| attr.to_string());
            let _ = writeln!(out, "  n{id} [label=\"{name} <= {threshold:.4}\"];");
            let l = emit(left, schema, next_id, out);
            let r = emit(right, schema, next_id, out);
            let _ = writeln!(out, "  n{id} -> n{l} [label=\"yes\"];");
            let _ = writeln!(out, "  n{id} -> n{r} [label=\"no\"];");
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use ppdt_data::gen::figure1;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let dot = to_dot(&t, Some(d.schema()));
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // One DOT node per tree node, one edge per child link.
        let nodes = dot.matches("\\n").count() + dot.matches(" <= ").count();
        assert_eq!(nodes, t.num_nodes());
        let edges = dot.matches(" -> ").count();
        assert_eq!(edges, t.num_nodes() - 1);
        assert!(dot.contains("salary <= "));
        assert!(dot.contains("High"));
    }

    #[test]
    fn dot_without_schema_uses_ids() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let dot = to_dot(&t, None);
        assert!(dot.contains("A1 <= ") || dot.contains("A0 <= "));
        assert!(dot.contains("c0"));
    }

    #[test]
    fn single_leaf_tree() {
        let d = figure1();
        let t = TreeBuilder::new(crate::builder::TreeParams { max_depth: 0, ..Default::default() })
            .fit(&d);
        let dot = to_dot(&t, Some(d.schema()));
        assert_eq!(dot.matches(" -> ").count(), 0);
        assert!(dot.contains("High"));
    }
}
