//! Impurity-based feature importance.
//!
//! The importance of an attribute is the total impurity decrease of
//! the splits it drives, weighted by the fraction of tuples reaching
//! each split (CART's "gini importance"). Because it is a pure
//! function of the tree's stored class histograms, it is **identical**
//! for the directly mined tree and the decoded tree — the custodian's
//! analyst loses nothing (tested in `verify`-level integration tests).

use ppdt_data::AttrId;

use crate::tree::{DecisionTree, Node};

/// Per-attribute importance scores, normalized to sum to 1 when any
/// split exists (all zeros for a single-leaf tree). The vector covers
/// attribute indices `0..num_attrs`.
pub fn feature_importance(tree: &DecisionTree, num_attrs: usize) -> Vec<f64> {
    let mut scores = vec![0.0f64; num_attrs];
    let total = tree.root.count() as f64;
    if total == 0.0 {
        return scores;
    }
    accumulate(&tree.root, tree, total, &mut scores);
    let sum: f64 = scores.iter().sum();
    if sum > 0.0 {
        for s in scores.iter_mut() {
            *s /= sum;
        }
    }
    scores
}

fn accumulate(node: &Node, tree: &DecisionTree, total: f64, scores: &mut [f64]) {
    if let Node::Split { attr, left, right, class_counts, .. } = node {
        let n = class_counts.iter().sum::<u32>();
        let nl = left.count();
        let nr = right.count();
        let imp = tree.criterion.impurity(class_counts, n);
        let imp_l = tree.criterion.impurity(left.class_counts(), nl);
        let imp_r = tree.criterion.impurity(right.class_counts(), nr);
        let decrease = f64::from(n) * imp - f64::from(nl) * imp_l - f64::from(nr) * imp_r;
        scores[attr.index()] += decrease.max(0.0) / total;
        accumulate(left, tree, total, scores);
        accumulate(right, tree, total, scores);
    }
}

/// Attributes ranked by importance, descending (ties by index).
pub fn importance_ranking(tree: &DecisionTree, num_attrs: usize) -> Vec<(AttrId, f64)> {
    let scores = feature_importance(tree, num_attrs);
    let mut ranked: Vec<(AttrId, f64)> =
        scores.into_iter().enumerate().map(|(i, s)| (AttrId(i), s)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{TreeBuilder, TreeParams};
    use ppdt_data::gen::figure1;
    use ppdt_data::{ClassId, DatasetBuilder, Schema};

    #[test]
    fn single_leaf_has_zero_importance() {
        let d = figure1();
        let t = TreeBuilder::new(TreeParams { max_depth: 0, ..Default::default() }).fit(&d);
        assert_eq!(feature_importance(&t, 2), vec![0.0, 0.0]);
    }

    #[test]
    fn importance_sums_to_one_and_favours_the_split_attribute() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let imp = feature_importance(&t, 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Figure 1's tree splits on salary (attribute 1) only.
        assert_eq!(imp[0], 0.0);
        assert_eq!(imp[1], 1.0);
        let ranked = importance_ranking(&t, 2);
        assert_eq!(ranked[0].0, AttrId(1));
    }

    #[test]
    fn irrelevant_attribute_scores_zero() {
        // Attribute 1 is pure noise; attribute 0 separates the classes.
        let mut b = DatasetBuilder::new(Schema::generated(2, 2));
        for i in 0..40 {
            b.push_row(&[i as f64, (i % 3) as f64], ClassId(u16::from(i >= 20)));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit(&d);
        let imp = feature_importance(&t, 2);
        assert!(imp[0] > 0.99, "{imp:?}");
    }

    #[test]
    fn importance_matches_for_entropy_criterion() {
        let d = figure1();
        let t = TreeBuilder::new(TreeParams {
            criterion: crate::split::SplitCriterion::Entropy,
            ..Default::default()
        })
        .fit(&d);
        let imp = feature_importance(&t, 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
