//! Decoding the mined tree `T'` back to the true tree (Theorem 2).
//!
//! The custodian receives `T'` from the miner, then builds `S` by
//! replacing every node `A θ ν'` with `A θ f_A⁻¹(ν')`. Theorem 2
//! states `S = T`, the tree mined on the original data.
//!
//! This module is deliberately generic: the inverse is any
//! `FnMut(AttrId, f64) -> f64`, supplied by `ppdt-transform`'s
//! custodian key (which also offers a data-aware variant for midpoint
//! thresholds under nonlinear transformations).

use ppdt_data::AttrId;

use crate::tree::DecisionTree;

/// Builds the tree `S` of Theorem 2: every split threshold `ν'` of
/// `mined` is replaced by `inverse(attr, ν')`. Structure, attributes
/// and leaf statistics are untouched.
pub fn decode_tree(mined: &DecisionTree, inverse: impl FnMut(AttrId, f64) -> f64) -> DecisionTree {
    mined.map_thresholds(inverse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::compare::trees_equal_eps;
    use ppdt_data::gen::{figure1, figure1_transformed};

    #[test]
    fn figure1_decode_recovers_original_tree() {
        // End-to-end Theorem 2 on the paper's own example, with the
        // paper's linear transformations age' = 0.9*age + 10 and
        // salary' = 0.5*salary. The analytic inverse is exact up to
        // floating-point rounding; `ppdt-transform`'s custodian key
        // additionally snaps decoded thresholds back onto the original
        // active domain for bit-exact recovery.
        let d = figure1();
        let d_prime = figure1_transformed();
        let builder = TreeBuilder::default();
        let t = builder.fit(&d);
        let t_prime = builder.fit(&d_prime);
        let s = decode_tree(&t_prime, |a, v| match a.index() {
            0 => (v - 10.0) / 0.9,
            _ => v / 0.5,
        });
        assert!(
            trees_equal_eps(&s, &t, 1e-9),
            "decoded:\n{}\noriginal:\n{}",
            s.render(None),
            t.render(None)
        );
    }

    #[test]
    fn identity_inverse_is_identity() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let s = decode_tree(&t, |_, v| v);
        assert_eq!(s, t);
    }
}
