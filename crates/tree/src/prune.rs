//! C4.5-style pessimistic error pruning.
//!
//! A subtree is replaced by a leaf when the leaf's pessimistic error
//! estimate does not exceed the sum of its children's. The estimate is
//! the upper confidence bound of the binomial error rate at confidence
//! factor `cf` (C4.5 defaults to 0.25), computed with the Wilson score
//! interval.
//!
//! The estimate is a pure function of the node's class histogram, so
//! pruning decisions on the transformed data `D'` coincide with those
//! on the original data `D` — the no-outcome-change guarantee extends
//! to pruned trees, which the integration tests exercise.

use crate::tree::{DecisionTree, Node};

/// Prunes `tree` with pessimistic error pruning at confidence factor
/// `cf` in `(0, 0.5]` (C4.5 uses 0.25; smaller prunes more).
///
/// ```
/// use ppdt_data::gen::figure1;
/// use ppdt_tree::{prune_pessimistic, TreeBuilder};
///
/// let d = figure1();
/// let tree = TreeBuilder::default().fit(&d);
/// let pruned = prune_pessimistic(&tree, 0.25);
/// assert!(pruned.num_nodes() <= tree.num_nodes());
/// ```
///
/// # Panics
/// Panics if `cf` is outside `(0, 0.5]`.
pub fn prune_pessimistic(tree: &DecisionTree, cf: f64) -> DecisionTree {
    assert!(cf > 0.0 && cf <= 0.5, "confidence factor must be in (0, 0.5]");
    let z = z_for_upper_tail(cf);
    DecisionTree {
        root: prune_node(&tree.root, z),
        num_classes: tree.num_classes,
        criterion: tree.criterion,
    }
}

fn prune_node(node: &Node, z: f64) -> Node {
    match node {
        Node::Leaf { .. } => node.clone(),
        Node::Split { attr, threshold, class_counts, left, right } => {
            let left = prune_node(left, z);
            let right = prune_node(right, z);

            let leaf_err = pessimistic_errors(class_counts, z);
            let subtree_err = subtree_errors(&left, z) + subtree_errors(&right, z);

            if leaf_err <= subtree_err + 0.1 {
                // Collapse: the node as a leaf is (pessimistically) at
                // least as good. The 0.1 slack mirrors C4.5's bias
                // towards smaller trees.
                let mut best = 0usize;
                for (i, &c) in class_counts.iter().enumerate() {
                    if c > class_counts[best] {
                        best = i;
                    }
                }
                Node::Leaf {
                    label: ppdt_data::ClassId(best as u16),
                    class_counts: class_counts.clone(),
                }
            } else {
                Node::Split {
                    attr: *attr,
                    threshold: *threshold,
                    class_counts: class_counts.clone(),
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
    }
}

/// Sum of pessimistic error counts over the leaves of `node`.
fn subtree_errors(node: &Node, z: f64) -> f64 {
    match node {
        Node::Leaf { class_counts, .. } => pessimistic_errors(class_counts, z),
        Node::Split { left, right, .. } => subtree_errors(left, z) + subtree_errors(right, z),
    }
}

/// Pessimistic error *count* of a histogram treated as a leaf:
/// observed errors plus C4.5's `addErrs` upper-confidence correction
/// (the formula used by Quinlan's C4.5 and Weka's J48).
fn pessimistic_errors(class_counts: &[u32], z: f64) -> f64 {
    let n: u32 = class_counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let max = class_counts.iter().copied().max().unwrap_or(0);
    let e = f64::from(n - max); // misclassified at this leaf
    e + add_errs(f64::from(n), e, z)
}

/// C4.5's `addErrs(N, e)` at the z corresponding to the confidence
/// factor: the extra errors granted by the upper confidence bound.
fn add_errs(n: f64, e: f64, z: f64) -> f64 {
    // cf is recovered from z only for the e < 1 exact-binomial branch.
    let cf = 1.0 - normal_cdf(z);
    if e < 1.0 {
        // Exact binomial for zero observed errors; linear interpolation
        // towards the e = 1 case for fractional e (cannot occur here,
        // but kept for fidelity to the reference implementation).
        let base = n * (1.0 - cf.powf(1.0 / n));
        if e == 0.0 {
            return base;
        }
        return base + e * (add_errs(n, 1.0, z) - base);
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let f = (e + 0.5) / n;
    let z2 = z * z;
    let r =
        (f + z2 / (2.0 * n) + z * (f / n - f * f / n + z2 / (4.0 * n * n)).sqrt()) / (1.0 + z2 / n);
    r * n - e
}

/// Standard normal CDF via `erf` (Abramowitz–Stegun 7.1.26 rational
/// approximation; absolute error < 1.5e-7).
fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The standard normal upper-tail quantile `z` with `P(Z > z) = cf`,
/// via the Acklam rational approximation of the inverse normal CDF
/// (absolute error < 1.2e-9 — far below what pruning can notice).
fn z_for_upper_tail(cf: f64) -> f64 {
    inverse_normal_cdf(1.0 - cf)
}

/// Inverse of the standard normal CDF (Acklam's algorithm).
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability out of range");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{TreeBuilder, TreeParams};
    use ppdt_data::{ClassId, DatasetBuilder, Schema};

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.75) - 0.674_489_75).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.01) + 2.326_347_87).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.001) + 3.090_232_31).abs() < 1e-6);
    }

    #[test]
    fn pessimistic_errors_increase_with_confidence() {
        let counts = vec![8u32, 2u32];
        let loose = pessimistic_errors(&counts, z_for_upper_tail(0.4));
        let tight = pessimistic_errors(&counts, z_for_upper_tail(0.05));
        assert!(tight > loose, "{tight} vs {loose}");
        assert!(loose >= 2.0, "upper bound never below observed errors");
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // A dominant class with a sprinkle of noise: the unpruned tree
        // chases the noise; pruning should shrink it.
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        for v in 0..60 {
            let c = if v % 17 == 3 { 1 } else { 0 };
            b.push_row(&[v as f64], ClassId(c));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit(&d);
        assert!(t.num_nodes() > 1);
        let p = prune_pessimistic(&t, 0.25);
        assert!(p.num_nodes() < t.num_nodes(), "{} -> {}", t.num_nodes(), p.num_nodes());
    }

    #[test]
    fn pruning_keeps_strong_splits() {
        // A clean separation must survive pruning.
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        for v in 0..30 {
            b.push_row(&[v as f64], ClassId(u16::from(v >= 15)));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit(&d);
        let p = prune_pessimistic(&t, 0.25);
        assert!(p.num_nodes() >= 3, "clean split must not be pruned");
        assert_eq!(p.accuracy(&d), 1.0);
    }

    #[test]
    fn pruned_tree_is_idempotent() {
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        for v in 0..60 {
            let c = if v % 11 == 5 { 1 } else { 0 };
            b.push_row(&[v as f64], ClassId(c));
        }
        let d = b.build();
        let t = TreeBuilder::new(TreeParams::default()).fit(&d);
        let p1 = prune_pessimistic(&t, 0.25);
        let p2 = prune_pessimistic(&p1, 0.25);
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "confidence factor")]
    fn cf_validated() {
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        b.push_row(&[1.0], ClassId(0));
        b.push_row(&[2.0], ClassId(1));
        let t = TreeBuilder::default().fit(&b.build());
        let _ = prune_pessimistic(&t, 0.9);
    }
}
