//! Tree equality — the check behind every no-outcome-change claim.

use crate::tree::{DecisionTree, Node};

/// Exact equality: identical structure, split attributes, bitwise
/// thresholds, leaf labels and class histograms.
pub fn trees_equal(a: &DecisionTree, b: &DecisionTree) -> bool {
    tree_diff(a, b, 0.0).is_none()
}

/// Equality up to a threshold tolerance: like [`trees_equal`] but split
/// thresholds may differ by at most `eps` (useful when the inverse
/// transformation is analytic and therefore carries floating-point
/// rounding).
pub fn trees_equal_eps(a: &DecisionTree, b: &DecisionTree, eps: f64) -> bool {
    tree_diff(a, b, eps).is_none()
}

/// Returns a human-readable description of the first structural
/// difference between the trees, or `None` when they are equal (with
/// thresholds compared up to `eps`).
pub fn tree_diff(a: &DecisionTree, b: &DecisionTree, eps: f64) -> Option<String> {
    if a.num_classes != b.num_classes {
        return Some(format!("class counts differ: {} vs {}", a.num_classes, b.num_classes));
    }
    diff_nodes(&a.root, &b.root, eps, "root")
}

fn diff_nodes(a: &Node, b: &Node, eps: f64, at: &str) -> Option<String> {
    match (a, b) {
        (
            Node::Leaf { label: la, class_counts: ca },
            Node::Leaf { label: lb, class_counts: cb },
        ) => {
            if la != lb {
                Some(format!("{at}: leaf labels {la} vs {lb}"))
            } else if ca != cb {
                Some(format!("{at}: leaf histograms {ca:?} vs {cb:?}"))
            } else {
                None
            }
        }
        (
            Node::Split { attr: aa, threshold: ta, left: lla, right: rra, class_counts: ca },
            Node::Split { attr: ab, threshold: tb, left: llb, right: rrb, class_counts: cb },
        ) => {
            if aa != ab {
                return Some(format!("{at}: split attrs {aa} vs {ab}"));
            }
            let close =
                if eps == 0.0 { ta.to_bits() == tb.to_bits() } else { (ta - tb).abs() <= eps };
            if !close {
                return Some(format!("{at}: thresholds {ta} vs {tb}"));
            }
            if ca != cb {
                return Some(format!("{at}: node histograms {ca:?} vs {cb:?}"));
            }
            diff_nodes(lla, llb, eps, &format!("{at}.L"))
                .or_else(|| diff_nodes(rra, rrb, eps, &format!("{at}.R")))
        }
        (Node::Leaf { .. }, Node::Split { .. }) => Some(format!("{at}: leaf vs split")),
        (Node::Split { .. }, Node::Leaf { .. }) => Some(format!("{at}: split vs leaf")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use ppdt_data::gen::figure1;

    #[test]
    fn identical_trees_equal() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        assert!(trees_equal(&t, &t.clone()));
        assert!(tree_diff(&t, &t, 0.0).is_none());
    }

    #[test]
    fn threshold_perturbation_detected() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let t2 = t.map_thresholds(|_, v| v + 1e-6);
        assert!(!trees_equal(&t, &t2));
        assert!(trees_equal_eps(&t, &t2, 1e-5));
        assert!(!trees_equal_eps(&t, &t2, 1e-7));
        let d = tree_diff(&t, &t2, 0.0).unwrap();
        assert!(d.contains("thresholds"), "{d}");
    }

    #[test]
    fn structural_difference_detected() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let stump =
            TreeBuilder::new(crate::builder::TreeParams { max_depth: 0, ..Default::default() })
                .fit(&d);
        let diff = tree_diff(&t, &stump, 0.0).unwrap();
        assert!(diff.contains("split vs leaf") || diff.contains("leaf vs split"));
    }

    #[test]
    fn exact_comparison_is_bitwise() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        // -0.0 vs 0.0 thresholds are different bit patterns.
        let ta = t.map_thresholds(|_, _| 0.0);
        let tb = t.map_thresholds(|_, _| -0.0);
        assert!(!trees_equal(&ta, &tb));
        assert!(trees_equal_eps(&ta, &tb, 1e-12));
    }
}
