//! The recursive decision-tree builder.

use serde::{Deserialize, Serialize};

use ppdt_data::{AttrId, ClassId, Dataset};

use crate::split::{best_split_sorted, AttrSplit, CandidatePolicy, SplitCriterion};
use crate::tree::{DecisionTree, Node};

/// How the numeric split threshold is materialized from the winning
/// boundary between two distinct values `v_left < v_right`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdPolicy {
    /// `threshold = v_left`, as C4.5 does ("the largest value not
    /// exceeding the midpoint" of the boundary). With this policy the
    /// threshold is always a data value, so decoding is the pointwise
    /// inverse transformation and Theorem 2 equality is exact.
    DataValue,
    /// `threshold = (v_left + v_right)/2`, as CART does. Decoding a
    /// midpoint threshold under a nonlinear transformation needs the
    /// data-aware decoder (`ppdt-transform` provides it).
    Midpoint,
}

/// Builder hyperparameters (C4.5-style stopping rules).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Split-selection criterion.
    pub criterion: SplitCriterion,
    /// Threshold materialization policy.
    pub threshold_policy: ThresholdPolicy,
    /// Candidate-boundary enumeration policy.
    pub candidate_policy: CandidatePolicy,
    /// Maximum tree depth (`usize::MAX` for unbounded).
    pub max_depth: usize,
    /// Minimum tuples required to attempt a split.
    pub min_samples_split: u32,
    /// Minimum tuples in each child.
    pub min_samples_leaf: u32,
    /// Minimum impurity decrease required to accept a split.
    pub min_impurity_decrease: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            criterion: SplitCriterion::Gini,
            threshold_policy: ThresholdPolicy::DataValue,
            candidate_policy: CandidatePolicy::RunBoundaries,
            max_depth: usize::MAX,
            min_samples_split: 2,
            min_samples_leaf: 1,
            min_impurity_decrease: 0.0,
        }
    }
}

impl TreeParams {
    /// Parameters with the given criterion, rest default.
    pub fn with_criterion(criterion: SplitCriterion) -> Self {
        TreeParams { criterion, ..Default::default() }
    }
}

/// Builds decision trees from a [`Dataset`].
///
/// ```
/// use ppdt_data::gen::figure1;
/// use ppdt_tree::{SplitCriterion, TreeBuilder, TreeParams};
///
/// let d = figure1();
/// let tree = TreeBuilder::new(TreeParams::with_criterion(SplitCriterion::Gini)).fit(&d);
/// assert_eq!(tree.accuracy(&d), 1.0);
/// assert!(tree.paths().len() >= 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TreeBuilder {
    params: TreeParams,
    /// Explicit worker-thread count for the parallel split search;
    /// `None` resolves through [`ppdt_obs::threads`] (the
    /// `PPDT_THREADS` override, then hardware parallelism).
    pub(crate) threads: Option<usize>,
}

/// Below this many histogram cells (`rows × attributes`) per split
/// search, thread-spawn overhead exceeds the scan itself and the
/// builders stay serial even when more workers are available. The
/// emitted tree never depends on this gate — only wall-clock does.
pub(crate) const PARALLEL_MIN_CELLS: usize = 8192;

impl TreeBuilder {
    /// A builder with the given parameters.
    pub fn new(params: TreeParams) -> Self {
        TreeBuilder { params, threads: None }
    }

    /// Sets the worker-thread count for split search in [`fit`] and
    /// [`fit_presorted`]. `None` (the default) resolves via
    /// [`ppdt_obs::threads`]: the `PPDT_THREADS` environment override,
    /// else available hardware parallelism. Thread count never changes
    /// the emitted tree — parallel split search is bit-identical to
    /// serial (see `tests/parallel_serial.rs`).
    ///
    /// [`fit`]: TreeBuilder::fit
    /// [`fit_presorted`]: TreeBuilder::fit_presorted
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The builder's parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Trains a tree on `d`.
    ///
    /// The algorithm is the textbook greedy construction the paper's
    /// Section 4 reasons about: at each node, for every attribute, sort
    /// the node's tuples, evaluate candidate boundaries between label
    /// runs (Lemma 2), pick the attribute/boundary with the lowest
    /// weighted child impurity (first-wins tie-breaking on exact score
    /// equality, so the choice is a pure function of class counts), and
    /// recurse.
    ///
    /// The split search fans out **attribute-wise** over scoped worker
    /// threads (the same pattern as `Encoder::threads`): each
    /// worker scans a contiguous ascending range of attributes and
    /// records its best candidate, and a serial reduction merges the
    /// per-range winners in ascending attribute order with the same
    /// strict `<` comparison — so the attr-major first-wins tie-break
    /// is preserved bit for bit and the emitted tree is independent of
    /// the thread count (see `tests/parallel_serial.rs`).
    ///
    /// # Panics
    /// Panics on an empty dataset — there is nothing to fit.
    pub fn fit(&self, d: &Dataset) -> DecisionTree {
        assert!(d.num_rows() > 0, "cannot fit a tree on an empty dataset");
        assert!(
            d.num_rows() <= u32::MAX as usize,
            "row count exceeds the u32 index space used by the mining layer"
        );
        let _t = ppdt_obs::phase("mine");
        let threads = ppdt_obs::threads(self.threads).min(d.num_attrs()).max(1);
        ppdt_obs::record_max(ppdt_obs::Counter::MiningThreads, threads as u64);
        let mut ctx = MineCtx::new(threads);
        let rows: Vec<u32> = (0..d.num_rows() as u32).collect();
        let root = self.grow(d, rows, 0, &mut ctx);
        ppdt_obs::add(ppdt_obs::Counter::SplitScanRows, ctx.scan_rows);
        ppdt_obs::add(ppdt_obs::Counter::PoolReuseHits, ctx.pool_hits);
        DecisionTree { root, num_classes: d.num_classes(), criterion: self.params.criterion }
    }

    fn grow(&self, d: &Dataset, rows: Vec<u32>, depth: usize, ctx: &mut MineCtx) -> Node {
        let p = &self.params;
        let counts = class_counts(d, &rows);
        let total = rows.len() as u32;
        let node_impurity = p.criterion.impurity(&counts, total);

        let stop = node_impurity == 0.0 || depth >= p.max_depth || total < p.min_samples_split;
        if !stop {
            if let Some((attr, split)) = self.best_split(d, &rows, ctx) {
                let decrease = node_impurity - split.score;
                if decrease > p.min_impurity_decrease {
                    let threshold = match p.threshold_policy {
                        ThresholdPolicy::DataValue => split.left_value,
                        ThresholdPolicy::Midpoint => 0.5 * (split.left_value + split.right_value),
                    };
                    let (left_rows, right_rows) = partition(d, &rows, attr, split.left_value, ctx);
                    ctx.recycle(rows);
                    debug_assert_eq!(left_rows.len() as u32, split.left_count);
                    let left = self.grow(d, left_rows, depth + 1, ctx);
                    let right = self.grow(d, right_rows, depth + 1, ctx);
                    return Node::Split {
                        attr,
                        threshold,
                        class_counts: counts,
                        left: Box::new(left),
                        right: Box::new(right),
                    };
                }
            }
        }

        ctx.recycle(rows);
        let label = majority(&counts);
        Node::Leaf { label, class_counts: counts }
    }

    /// Best split over all attributes (first attribute wins score
    /// ties). Large nodes fan the attribute loop out over scoped
    /// threads; the serial merge below visits the per-range winners in
    /// ascending attribute order with strict `<`, which is exactly the
    /// serial loop's first-wins order.
    fn best_split(
        &self,
        d: &Dataset,
        rows: &[u32],
        ctx: &mut MineCtx,
    ) -> Option<(AttrId, AttrSplit)> {
        let p = &self.params;
        let m = d.num_attrs();
        ctx.scan_rows += (rows.len() * m) as u64;
        let threads = ctx.threads.min(m);
        if threads <= 1 || rows.len() * m < PARALLEL_MIN_CELLS {
            return best_split_range(d, rows, 0..m, p, &mut ctx.scratch[0]);
        }

        let chunk_len = m.div_ceil(threads);
        let num_chunks = m.div_ceil(chunk_len);
        let mut slots: Vec<Option<(AttrId, AttrSplit)>> = (0..num_chunks).map(|_| None).collect();
        let result = crossbeam::thread::scope(|scope| {
            for ((t, slot), scratch) in slots.iter_mut().enumerate().zip(ctx.scratch.iter_mut()) {
                let start = t * chunk_len;
                let end = (start + chunk_len).min(m);
                scope.spawn(move |_| {
                    *slot = best_split_range(d, rows, start..end, p, scratch);
                });
            }
        });
        if let Err(payload) = result {
            // Re-raise the worker's panic on the caller thread: `fit`
            // is a panicking API, so the payload (e.g. a NaN value
            // assertion) must surface unchanged, not be swallowed or
            // wrapped.
            std::panic::resume_unwind(payload);
        }

        let mut best: Option<(AttrId, AttrSplit)> = None;
        for cand in slots.into_iter().flatten() {
            if best.as_ref().is_none_or(|(_, b)| cand.1.score < b.score) {
                best = Some(cand);
            }
        }
        best
    }
}

/// Reusable working memory for one `fit` call: per-worker sort
/// scratch and a pool of retired row-index vectors, so the recursive
/// partitioning allocates O(tree depth) vectors instead of O(nodes).
struct MineCtx {
    /// Resolved worker count (≥ 1).
    threads: usize,
    /// One sort scratch per worker.
    scratch: Vec<SplitScratch>,
    /// Retired row-index vectors awaiting reuse by `partition`.
    row_pool: Vec<Vec<u32>>,
    /// `(row, attribute)` pairs visited by split search.
    scan_rows: u64,
    /// Buffers served from `row_pool` instead of a fresh allocation.
    pool_hits: u64,
}

impl MineCtx {
    fn new(threads: usize) -> Self {
        let mut scratch = Vec::new();
        scratch.resize_with(threads, SplitScratch::default);
        MineCtx { threads, scratch, row_pool: Vec::new(), scan_rows: 0, pool_hits: 0 }
    }

    /// A cleared row-index vector, recycled from the pool when one is
    /// available.
    fn take_rows(&mut self) -> Vec<u32> {
        match self.row_pool.pop() {
            Some(mut v) => {
                v.clear();
                self.pool_hits += 1;
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a row-index vector to the pool once its node is done.
    fn recycle(&mut self, v: Vec<u32>) {
        if v.capacity() > 0 {
            self.row_pool.push(v);
        }
    }
}

/// Per-worker sort scratch for one attribute scan.
#[derive(Default)]
struct SplitScratch {
    /// `(value, label)` pairs gathered in row order.
    pairs: Vec<(f64, ClassId)>,
    /// Sorted-order index buffer (`ppdt_data::sorted_order_by_value`).
    order: Vec<u32>,
    /// Pairs permuted into ascending value order.
    sorted: Vec<(f64, ClassId)>,
}

/// The serial split search over a contiguous attribute range,
/// ascending, first-wins on exact score ties.
fn best_split_range(
    d: &Dataset,
    rows: &[u32],
    attrs: std::ops::Range<usize>,
    p: &TreeParams,
    scratch: &mut SplitScratch,
) -> Option<(AttrId, AttrSplit)> {
    let mut best: Option<(AttrId, AttrSplit)> = None;
    for a in attrs {
        let a = AttrId(a);
        let col = d.column(a);
        scratch.pairs.clear();
        scratch.pairs.extend(rows.iter().map(|&r| (col[r as usize], d.label(r as usize))));
        ppdt_data::sorted_order_by_value(&scratch.pairs, |pr| pr.0, &mut scratch.order)
            .expect("row count fits u32 (asserted at fit entry)");
        scratch.sorted.clear();
        scratch.sorted.extend(scratch.order.iter().map(|&i| scratch.pairs[i as usize]));
        if let Some(s) = best_split_sorted(
            &scratch.sorted,
            d.num_classes(),
            p.criterion,
            p.candidate_policy,
            p.min_samples_leaf,
        ) {
            if best.as_ref().is_none_or(|(_, b)| s.score < b.score) {
                best = Some((a, s));
            }
        }
    }
    best
}

fn class_counts(d: &Dataset, rows: &[u32]) -> Vec<u32> {
    let mut counts = vec![0u32; d.num_classes()];
    for &r in rows {
        counts[d.label(r as usize).index()] += 1;
    }
    counts
}

fn majority(counts: &[u32]) -> ClassId {
    let mut best = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    ClassId(best as u16)
}

/// Partitions `rows` into (≤ left_value, > left_value) on `attr`,
/// preserving relative row order (determinism). The output vectors
/// come from the context's reuse pool when available.
fn partition(
    d: &Dataset,
    rows: &[u32],
    attr: AttrId,
    left_value: f64,
    ctx: &mut MineCtx,
) -> (Vec<u32>, Vec<u32>) {
    let col = d.column(attr);
    let mut left = ctx.take_rows();
    let mut right = ctx.take_rows();
    for &r in rows {
        if col[r as usize] <= left_value {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::figure1;
    use ppdt_data::{DatasetBuilder, Schema};

    #[test]
    fn fits_figure1_exactly() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        // The tree must classify its own training data perfectly: the
        // data is separable (no contradictory duplicate tuples).
        assert_eq!(t.accuracy(&d), 1.0);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        for v in 0..10 {
            b.push_row(&[v as f64], ClassId(0));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit(&d);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[3.0]), ClassId(0));
    }

    #[test]
    fn max_depth_zero_gives_majority_stump() {
        let d = figure1();
        let params = TreeParams { max_depth: 0, ..Default::default() };
        let t = TreeBuilder::new(params).fit(&d);
        assert_eq!(t.num_nodes(), 1);
        // 4 High vs 2 Low -> predicts High everywhere.
        assert_eq!(t.predict(&[0.0, 0.0]), ClassId(0));
    }

    #[test]
    fn min_samples_leaf_bounds_leaf_sizes() {
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        for v in 0..40 {
            b.push_row(&[v as f64], ClassId((v % 2) as u16));
        }
        let d = b.build();
        let params = TreeParams { min_samples_leaf: 8, ..Default::default() };
        let t = TreeBuilder::new(params).fit(&d);
        for p in t.paths() {
            assert!(p.count >= 8, "leaf with {} tuples", p.count);
        }
    }

    #[test]
    fn threshold_policies_differ_but_agree_on_predictions() {
        let d = figure1();
        let t1 = TreeBuilder::new(TreeParams {
            threshold_policy: ThresholdPolicy::DataValue,
            ..Default::default()
        })
        .fit(&d);
        let t2 = TreeBuilder::new(TreeParams {
            threshold_policy: ThresholdPolicy::Midpoint,
            ..Default::default()
        })
        .fit(&d);
        // Training-data predictions agree (both thresholds separate the
        // same two data values).
        assert_eq!(t1.accuracy(&d), 1.0);
        assert_eq!(t2.accuracy(&d), 1.0);
    }

    #[test]
    fn inseparable_duplicates_terminate() {
        // Identical tuples with conflicting labels: impurity can never
        // reach 0 and no split exists; the builder must terminate.
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        for _ in 0..5 {
            b.push_row(&[1.0], ClassId(0));
            b.push_row(&[1.0], ClassId(1));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit(&d);
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn entropy_criterion_builds_consistent_tree() {
        let d = figure1();
        let t = TreeBuilder::new(TreeParams::with_criterion(SplitCriterion::Entropy)).fit(&d);
        assert_eq!(t.accuracy(&d), 1.0);
        assert_eq!(t.criterion, SplitCriterion::Entropy);
    }

    #[test]
    fn min_impurity_decrease_prunes_weak_splits() {
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        // 9 of class 0 on the left, then a mixed zone: a weak split.
        for v in 0..9 {
            b.push_row(&[v as f64], ClassId(0));
        }
        for v in 9..13 {
            b.push_row(&[v as f64], ClassId((v % 2) as u16));
        }
        let d = b.build();
        let strict = TreeParams { min_impurity_decrease: 0.45, ..Default::default() };
        let t = TreeBuilder::new(strict).fit(&d);
        assert_eq!(t.num_nodes(), 1, "weak splits rejected");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = ppdt_data::Dataset::from_columns(Schema::generated(1, 2), vec![vec![]], vec![]);
        let _ = TreeBuilder::default().fit(&d);
    }

    #[test]
    fn deterministic_rebuild() {
        let d = figure1();
        let t1 = TreeBuilder::default().fit(&d);
        let t2 = TreeBuilder::default().fit(&d);
        assert_eq!(t1, t2);
    }
}
