//! Model evaluation utilities: train/test splits, confusion matrices,
//! k-fold cross-validation.
//!
//! These exist so the experiment harness (and downstream users) can
//! quantify *outcome change* — e.g. how much accuracy the perturbation
//! baseline loses — with standard methodology. Note they are not
//! needed for the no-outcome-change guarantee itself, which is exact.

use rand::seq::SliceRandom;
use rand::Rng;

use ppdt_data::{AttrId, ClassId, Dataset};

use crate::builder::TreeBuilder;
use crate::tree::DecisionTree;

/// A confusion matrix over `k` classes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    /// `counts[actual][predicted]`.
    counts: Vec<Vec<u32>>,
}

impl ConfusionMatrix {
    /// An empty matrix for `k` classes.
    pub fn new(k: usize) -> Self {
        ConfusionMatrix { k, counts: vec![vec![0; k]; k] }
    }

    /// Records one prediction.
    pub fn record(&mut self, actual: ClassId, predicted: ClassId) {
        self.counts[actual.index()][predicted.index()] += 1;
    }

    /// `counts[actual][predicted]`.
    pub fn count(&self, actual: ClassId, predicted: ClassId) -> u32 {
        self.counts[actual.index()][predicted.index()]
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u32 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (1.0 on an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let hits: u32 = (0..self.k).map(|i| self.counts[i][i]).sum();
        f64::from(hits) / f64::from(total)
    }

    /// Recall of one class (1.0 when the class never occurs).
    pub fn recall(&self, class: ClassId) -> f64 {
        let row: u32 = self.counts[class.index()].iter().sum();
        if row == 0 {
            return 1.0;
        }
        f64::from(self.counts[class.index()][class.index()]) / f64::from(row)
    }

    /// Precision of one class (1.0 when the class is never predicted).
    pub fn precision(&self, class: ClassId) -> f64 {
        let col: u32 = (0..self.k).map(|i| self.counts[i][class.index()]).sum();
        if col == 0 {
            return 1.0;
        }
        f64::from(self.counts[class.index()][class.index()]) / f64::from(col)
    }
}

/// Evaluates a tree on a dataset, producing the confusion matrix.
pub fn evaluate(tree: &DecisionTree, d: &Dataset) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new(d.num_classes());
    let mut values = vec![0.0; d.num_attrs()];
    for row in 0..d.num_rows() {
        for (a, v) in values.iter_mut().enumerate() {
            *v = d.value(row, AttrId(a));
        }
        cm.record(d.label(row), tree.predict(&values));
    }
    cm
}

/// Splits a dataset's rows into a train/test pair by shuffling row
/// indices (`test_fraction` of the rows go to the test set, at least
/// one row on each side for non-degenerate inputs).
///
/// # Panics
/// Panics if `test_fraction` is outside `(0, 1)` or the dataset has
/// fewer than 2 rows.
pub fn train_test_split<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    test_fraction: f64,
) -> (Dataset, Dataset) {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0, 1)");
    assert!(d.num_rows() >= 2, "need at least two rows to split");
    let mut order: Vec<u32> = (0..d.num_rows() as u32).collect();
    order.shuffle(rng);
    let n_test =
        ((d.num_rows() as f64 * test_fraction).round() as usize).clamp(1, d.num_rows() - 1);
    let (test_rows, train_rows) = order.split_at(n_test);
    (subset(d, train_rows), subset(d, test_rows))
}

/// Materializes a row subset of a dataset.
pub fn subset(d: &Dataset, rows: &[u32]) -> Dataset {
    let columns: Vec<Vec<f64>> = (0..d.num_attrs())
        .map(|a| rows.iter().map(|&r| d.value(r as usize, AttrId(a))).collect())
        .collect();
    let labels: Vec<ClassId> = rows.iter().map(|&r| d.label(r as usize)).collect();
    Dataset::from_columns(d.schema().clone(), columns, labels)
}

/// K-fold cross-validated accuracy of a tree builder.
///
/// # Panics
/// Panics if `folds < 2` or the dataset has fewer rows than folds.
pub fn cross_validate<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    builder: &TreeBuilder,
    folds: usize,
) -> Vec<f64> {
    assert!(folds >= 2, "need at least two folds");
    assert!(d.num_rows() >= folds, "need at least one row per fold");
    let mut order: Vec<u32> = (0..d.num_rows() as u32).collect();
    order.shuffle(rng);

    let mut accuracies = Vec::with_capacity(folds);
    let fold_size = d.num_rows().div_ceil(folds);
    for f in 0..folds {
        let lo = f * fold_size;
        let hi = ((f + 1) * fold_size).min(d.num_rows());
        if lo >= hi {
            break;
        }
        let test_rows = &order[lo..hi];
        let train_rows: Vec<u32> = order[..lo].iter().chain(&order[hi..]).copied().collect();
        let train = subset(d, &train_rows);
        let test = subset(d, test_rows);
        let tree = builder.fit(&train);
        accuracies.push(evaluate(&tree, &test).accuracy());
    }
    accuracies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeParams;
    use ppdt_data::gen::figure1;
    use ppdt_data::{DatasetBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(Schema::generated(1, 2));
        for i in 0..n {
            b.push_row(&[i as f64], ClassId(u16::from(i >= n / 2)));
        }
        b.build()
    }

    #[test]
    fn confusion_matrix_accounting() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(ClassId(0), ClassId(0));
        cm.record(ClassId(0), ClassId(1));
        cm.record(ClassId(1), ClassId(1));
        cm.record(ClassId(1), ClassId(1));
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.accuracy(), 0.75);
        assert_eq!(cm.recall(ClassId(0)), 0.5);
        assert_eq!(cm.precision(ClassId(1)), 2.0 / 3.0);
        assert_eq!(cm.precision(ClassId(0)), 1.0);
    }

    #[test]
    fn empty_matrix_conventions() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.recall(ClassId(2)), 1.0);
        assert_eq!(cm.precision(ClassId(1)), 1.0);
    }

    #[test]
    fn evaluate_on_training_data_is_perfect_for_separable() {
        let d = separable(40);
        let t = TreeBuilder::default().fit(&d);
        let cm = evaluate(&t, &d);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.total(), 40);
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = separable(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = train_test_split(&mut rng, &d, 0.3);
        assert_eq!(train.num_rows(), 70);
        assert_eq!(test.num_rows(), 30);
        assert_eq!(train.schema(), d.schema());
    }

    #[test]
    fn cross_validation_on_separable_data_is_high() {
        let d = separable(200);
        let mut rng = StdRng::seed_from_u64(2);
        let builder = TreeBuilder::new(TreeParams { min_samples_leaf: 2, ..Default::default() });
        let accs = cross_validate(&mut rng, &d, &builder, 5);
        assert_eq!(accs.len(), 5);
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!(mean > 0.9, "mean accuracy {mean}");
    }

    #[test]
    fn subset_preserves_rows() {
        let d = figure1();
        let s = subset(&d, &[5, 0]);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.value(0, AttrId(0)), 68.0);
        assert_eq!(s.value(1, AttrId(0)), 17.0);
        assert_eq!(s.label(0), d.label(5));
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_rejected() {
        let d = separable(10);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = train_test_split(&mut rng, &d, 1.5);
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn bad_folds_rejected() {
        let d = separable(10);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = cross_validate(&mut rng, &d, &TreeBuilder::default(), 1);
    }
}
