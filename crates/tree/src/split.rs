//! Impurity metrics and the per-attribute split search.
//!
//! Lemma 2 of the paper: a split point optimizing the gini index or
//! entropy never falls strictly inside a label run, so it suffices to
//! evaluate boundaries between successive runs. We enumerate
//! distinct-value group boundaries and skip those interior to a run
//! (both adjacent groups monochromatic with the same label). The
//! exhaustive variant evaluates *every* group boundary; a test checks
//! that both find the same optimum, which is this crate's evidence for
//! Lemma 2.

use serde::{Deserialize, Serialize};

use ppdt_data::ClassId;

/// Split-selection criterion (Section 4 considers both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitCriterion {
    /// Gini index: minimize the children's weighted gini impurity.
    Gini,
    /// Entropy: maximize information gain (equivalently minimize the
    /// children's weighted entropy).
    Entropy,
}

impl SplitCriterion {
    /// Impurity of a class histogram with `total` tuples.
    pub fn impurity(self, counts: &[u32], total: u32) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = f64::from(total);
        match self {
            SplitCriterion::Gini => {
                let mut s = 0.0;
                for &c in counts {
                    let p = f64::from(c) / t;
                    s += p * p;
                }
                1.0 - s
            }
            SplitCriterion::Entropy => {
                let mut h = 0.0;
                for &c in counts {
                    if c > 0 {
                        let p = f64::from(c) / t;
                        h -= p * p.log2();
                    }
                }
                h
            }
        }
    }
}

/// Which group boundaries the split search evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidatePolicy {
    /// Only boundaries between label runs (Lemma 2); the default.
    RunBoundaries,
    /// Every distinct-value boundary; used to validate Lemma 2.
    AllBoundaries,
}

/// The best split found for one attribute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttrSplit {
    /// Children's weighted impurity (lower is better).
    pub score: f64,
    /// Largest attribute value routed to the left child.
    pub left_value: f64,
    /// Smallest attribute value routed to the right child.
    pub right_value: f64,
    /// Number of tuples in the left child.
    pub left_count: u32,
    /// Ordinal position of the boundary in the distinct-value sequence
    /// (number of distinct values on the left). Together with the run
    /// structure this is the paper's "split point location".
    pub boundary_index: usize,
}

/// Finds the best split of `pairs` (the node's `(value, label)` tuples,
/// **sorted by value**) under `criterion`.
///
/// Returns `None` when no boundary satisfies `min_leaf` on both sides
/// or all values are equal.
pub fn best_split_sorted(
    pairs: &[(f64, ClassId)],
    num_classes: usize,
    criterion: SplitCriterion,
    policy: CandidatePolicy,
    min_leaf: u32,
) -> Option<AttrSplit> {
    let n = pairs.len() as u32;
    if n < 2 {
        return None;
    }
    debug_assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0), "pairs must be sorted by value");

    let mut left = vec![0u32; num_classes];
    let mut right = vec![0u32; num_classes];
    for &(_, c) in pairs {
        right[c.index()] += 1;
    }

    let mut best: Option<AttrSplit> = None;
    let mut i = 0usize;
    let mut boundary_index = 0usize;

    while i < pairs.len() {
        // Consume one distinct-value group.
        let v = pairs[i].0;
        let mut group_mono: Option<ClassId> = Some(pairs[i].1);
        while i < pairs.len() && pairs[i].0 == v {
            let c = pairs[i].1;
            left[c.index()] += 1;
            right[c.index()] -= 1;
            if group_mono != Some(c) {
                group_mono = None;
            }
            i += 1;
        }
        boundary_index += 1;
        if i == pairs.len() {
            break; // no boundary after the last group
        }

        let left_n = i as u32;
        let right_n = n - left_n;
        // The boundary after this group. Determine whether the next
        // group continues the same run (skip under RunBoundaries).
        let next_v = pairs[i].0;
        let inside_run = match policy {
            CandidatePolicy::AllBoundaries => false,
            CandidatePolicy::RunBoundaries => {
                // Boundary is interior to a run iff this group and the
                // next are monochromatic with the same label.
                match group_mono {
                    None => false,
                    Some(l) => {
                        let mut j = i;
                        let mut next_mono = true;
                        while j < pairs.len() && pairs[j].0 == next_v {
                            if pairs[j].1 != l {
                                next_mono = false;
                                break;
                            }
                            j += 1;
                        }
                        next_mono
                    }
                }
            }
        };

        if inside_run || left_n < min_leaf || right_n < min_leaf {
            continue;
        }

        let score = (f64::from(left_n) * criterion.impurity(&left, left_n)
            + f64::from(right_n) * criterion.impurity(&right, right_n))
            / f64::from(n);
        // Strict improvement keeps the earliest boundary on ties, so
        // the winner is deterministic and count-only — identical on
        // the original and transformed data.
        if best.is_none_or(|b| score < b.score) {
            best = Some(AttrSplit {
                score,
                left_value: v,
                right_value: next_v,
                left_count: left_n,
                boundary_index,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> ClassId {
        ClassId(i)
    }

    #[test]
    fn gini_impurity_basics() {
        let g = SplitCriterion::Gini;
        assert_eq!(g.impurity(&[10, 0], 10), 0.0);
        assert!((g.impurity(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(g.impurity(&[0, 0], 0), 0.0);
    }

    #[test]
    fn entropy_impurity_basics() {
        let e = SplitCriterion::Entropy;
        assert_eq!(e.impurity(&[10, 0], 10), 0.0);
        assert!((e.impurity(&[5, 5], 10) - 1.0).abs() < 1e-12);
        assert!((e.impurity(&[2, 2, 2, 2], 8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_found() {
        // 1,2 -> class 0; 3,4 -> class 1. Best boundary between 2 and 3.
        let pairs = [(1.0, c(0)), (2.0, c(0)), (3.0, c(1)), (4.0, c(1))];
        let s =
            best_split_sorted(&pairs, 2, SplitCriterion::Gini, CandidatePolicy::RunBoundaries, 1)
                .unwrap();
        assert_eq!(s.left_value, 2.0);
        assert_eq!(s.right_value, 3.0);
        assert_eq!(s.score, 0.0);
        assert_eq!(s.left_count, 2);
        assert_eq!(s.boundary_index, 2);
    }

    #[test]
    fn run_interior_boundaries_skipped() {
        // All one class on the left run: boundary 1|2 is interior.
        let pairs = [(1.0, c(0)), (2.0, c(0)), (3.0, c(1))];
        let s =
            best_split_sorted(&pairs, 2, SplitCriterion::Gini, CandidatePolicy::RunBoundaries, 1)
                .unwrap();
        assert_eq!(s.left_value, 2.0);
        // And exhaustive search agrees on the optimum (Lemma 2).
        let s2 =
            best_split_sorted(&pairs, 2, SplitCriterion::Gini, CandidatePolicy::AllBoundaries, 1)
                .unwrap();
        assert_eq!(s.score, s2.score);
        assert_eq!(s.left_value, s2.left_value);
    }

    #[test]
    fn ties_never_split() {
        // All values equal: no boundary at all.
        let pairs = [(5.0, c(0)), (5.0, c(1)), (5.0, c(0))];
        assert!(best_split_sorted(
            &pairs,
            2,
            SplitCriterion::Gini,
            CandidatePolicy::RunBoundaries,
            1
        )
        .is_none());
    }

    #[test]
    fn min_leaf_respected() {
        let pairs = [(1.0, c(0)), (2.0, c(1)), (3.0, c(0)), (4.0, c(1))];
        let s =
            best_split_sorted(&pairs, 2, SplitCriterion::Gini, CandidatePolicy::AllBoundaries, 2);
        if let Some(s) = s {
            assert!(s.left_count >= 2);
            assert!(s.left_count <= 2);
        }
        let none =
            best_split_sorted(&pairs, 2, SplitCriterion::Gini, CandidatePolicy::AllBoundaries, 3);
        assert!(none.is_none());
    }

    #[test]
    fn non_mono_tie_group_is_candidate_boundary() {
        // Group at 2.0 has both classes; the boundary after it must be
        // considered even under RunBoundaries — and here it is the
        // strict optimum.
        let pairs = [(1.0, c(0)), (2.0, c(0)), (2.0, c(0)), (2.0, c(1)), (3.0, c(1)), (3.0, c(1))];
        let s =
            best_split_sorted(&pairs, 2, SplitCriterion::Gini, CandidatePolicy::RunBoundaries, 1)
                .unwrap();
        assert_eq!(s.left_value, 2.0);
        assert_eq!(s.right_value, 3.0);
    }

    #[test]
    fn tie_scores_keep_first_boundary() {
        // Boundaries after 1.0 and after 2.0 score identically; the
        // earliest wins so the choice is a pure function of counts.
        let pairs = [(1.0, c(0)), (2.0, c(0)), (2.0, c(1)), (3.0, c(1))];
        let s =
            best_split_sorted(&pairs, 2, SplitCriterion::Gini, CandidatePolicy::RunBoundaries, 1)
                .unwrap();
        assert_eq!(s.left_value, 1.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(best_split_sorted(&[], 2, SplitCriterion::Gini, CandidatePolicy::RunBoundaries, 1)
            .is_none());
        assert!(best_split_sorted(
            &[(1.0, c(0))],
            2,
            SplitCriterion::Gini,
            CandidatePolicy::RunBoundaries,
            1
        )
        .is_none());
    }

    #[test]
    fn lemma2_run_boundaries_equal_exhaustive_on_random_data() {
        // Deterministic pseudo-random pattern; checks the optimum score
        // matches between the two policies (Lemma 2).
        let mut pairs = Vec::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 37) as f64;
            let l = ((x >> 13) % 3) as u16;
            pairs.push((v, c(l)));
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for crit in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            let a = best_split_sorted(&pairs, 3, crit, CandidatePolicy::RunBoundaries, 1).unwrap();
            let b = best_split_sorted(&pairs, 3, crit, CandidatePolicy::AllBoundaries, 1).unwrap();
            assert!((a.score - b.score).abs() < 1e-12, "{crit:?}");
            assert_eq!(a.left_value, b.left_value, "{crit:?}");
        }
    }
}
