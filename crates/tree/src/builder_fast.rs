//! A presorted, breadth-first tree builder (SLIQ/SPRINT style).
//!
//! [`TreeBuilder::fit`] re-sorts each node's tuples for every
//! attribute — `O(depth · m · n log n)` worst case. This module builds
//! the **same tree, bit for bit**, with each attribute sorted once
//! globally (`O(m · n log n)` total) and every level evaluated by a
//! single `O(m · n)` pass over the presorted orders, dispatching rows
//! to their current node and maintaining per-node split-search state.
//!
//! The per-level pass is parallelized **attribute-wise**, exactly as
//! the SLIQ/SPRINT papers prescribe: attributes are split into
//! contiguous ascending ranges, one scoped worker thread per range,
//! and each worker keeps its per-node scan state in disjoint
//! `chunks_mut` slices of flat arenas (class histograms as one
//! `workers × active_nodes × classes` `Vec<u32>`, reused across
//! levels). Because every worker scans its attributes in ascending
//! order with strict `<` first-wins, and the serial merge visits the
//! per-worker winners in ascending attribute-range order with the same
//! strict `<`, the global attr-major first-wins tie-break is preserved
//! bit for bit — the tree is independent of the thread count.
//!
//! On bushy trees (node subsets shrink geometrically) the recursive
//! builder's re-sorts are cheap and its cache locality wins — measure
//! before switching (`benches/tree_build.rs` compares both). The
//! presorted builder's complexity advantage materializes on deep,
//! unbalanced trees where large subsets persist across many levels.
//! Either way, equality with the recursive builder is a tested
//! invariant (same candidate boundaries, same scores, same first-wins
//! tie-breaking), so the two implementations cross-validate each
//! other — the main value of keeping both.

use std::ops::Range;

use ppdt_data::{AttrId, ClassId, Dataset};

use crate::builder::{ThresholdPolicy, TreeBuilder, TreeParams, PARALLEL_MIN_CELLS};
use crate::split::CandidatePolicy;
use crate::tree::{DecisionTree, Node};

/// Split-search state for one active node while scanning one
/// attribute's sorted order. `Copy` so a level's states live in one
/// flat arena refilled with `slice::fill` — no per-node allocation.
/// The class histograms that the old per-node `ScanState` carried as
/// `Vec`s live in separate flat arenas indexed by the same slot.
#[derive(Clone, Copy)]
struct NodeScan {
    /// Rows seen so far.
    left_n: u32,
    /// Value of the group currently being consumed.
    cur_value: f64,
    /// Single label of the current group, while it is monochromatic.
    cur_mono: Option<ClassId>,
    /// Whether any row has been seen.
    started: bool,
    /// Pending boundary between the previous and current group,
    /// evaluable once the current group completes (the boundary's
    /// right-group mono status is `cur_mono` at that moment).
    pending: Option<PendingMeta>,
}

impl NodeScan {
    const EMPTY: NodeScan =
        NodeScan { left_n: 0, cur_value: f64::NAN, cur_mono: None, started: false, pending: None };
}

/// A pending boundary's scalar state; its left-histogram snapshot
/// lives in the pending arena at the node's slot.
#[derive(Clone, Copy)]
struct PendingMeta {
    /// Rows on the left of the boundary.
    left_n: u32,
    /// Largest value on the left.
    left_value: f64,
    /// Smallest value on the right.
    right_value: f64,
    /// Mono label of the group left of the boundary.
    left_group_mono: Option<ClassId>,
}

/// Best split found for a node so far (attr-major, then boundary-major
/// first-wins tie-breaking, matching `best_split_sorted`).
#[derive(Clone, Copy)]
struct BestSplit {
    attr: AttrId,
    score: f64,
    left_value: f64,
    right_value: f64,
}

struct WorkNode {
    counts: Vec<u32>,
    depth: usize,
    /// On the active frontier this level.
    active: bool,
    best: Option<BestSplit>,
    children: Option<(usize, usize)>,
    split: Option<BestSplit>,
}

/// Clears and refills a reusable arena, counting a pool hit when the
/// existing capacity was enough (no fresh allocation).
fn reuse_arena<T: Copy>(arena: &mut Vec<T>, len: usize, fill: T, pool_hits: &mut u64) {
    if arena.capacity() >= len && !arena.is_empty() {
        *pool_hits += 1;
    }
    arena.clear();
    arena.resize(len, fill);
}

impl TreeBuilder {
    /// Trains the same tree as [`TreeBuilder::fit`] — bit for bit —
    /// using the presorted breadth-first algorithm (see the module
    /// docs for when this wins, and for why the attribute-wise worker
    /// fan-out cannot change the result).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit_presorted(&self, d: &Dataset) -> DecisionTree {
        assert!(d.num_rows() > 0, "cannot fit a tree on an empty dataset");
        assert!(
            d.num_rows() <= u32::MAX as usize,
            "row count exceeds the u32 index space used by the mining layer"
        );
        let _t = ppdt_obs::phase("mine");
        let p = *self.params();
        let n = d.num_rows();
        let k = d.num_classes();
        let m = d.num_attrs();
        let threads = ppdt_obs::threads(self.threads).min(m).max(1);
        ppdt_obs::record_max(ppdt_obs::Counter::MiningThreads, threads as u64);

        // One global sort per attribute. Stability does not matter for
        // the scan (only group histograms are consumed), so the shared
        // helper's index tie-break is merely a determinism bonus.
        let orders: Vec<Vec<u32>> = (0..m)
            .map(|a| {
                let col = d.column(AttrId(a));
                let mut order = Vec::new();
                ppdt_data::sorted_order_by_value(col, |&v| v, &mut order)
                    .expect("row count fits u32 (asserted at fit entry)");
                order
            })
            .collect();

        let mut root_counts = vec![0u32; k];
        for c in d.labels() {
            root_counts[c.index()] += 1;
        }
        let mut nodes: Vec<WorkNode> = vec![WorkNode {
            counts: root_counts,
            depth: 0,
            active: true,
            best: None,
            children: None,
            split: None,
        }];
        let mut node_of_row = vec![0u32; n];

        // Per-level working memory, reused (not reallocated) across
        // levels. The histogram/meta/best arenas hold `workers`
        // disjoint sub-arenas split via `chunks_mut`.
        let workers = if threads > 1 && n * m >= PARALLEL_MIN_CELLS { threads } else { 1 };
        let chunk_len = m.div_ceil(workers);
        let nw = m.div_ceil(chunk_len);
        let mut active_ids: Vec<u32> = Vec::new();
        let mut slot_of_node: Vec<u32> = Vec::new();
        let mut totals: Vec<u32> = Vec::new();
        let mut left_arena: Vec<u32> = Vec::new();
        let mut pending_arena: Vec<u32> = Vec::new();
        let mut meta_arena: Vec<NodeScan> = Vec::new();
        let mut best_arena: Vec<Option<BestSplit>> = Vec::new();
        let mut scan_slots: Vec<u64> = vec![0; nw];
        let mut right_buf = Vec::with_capacity(k);
        let mut pool_hits = 0u64;
        let mut scan_rows = 0u64;

        loop {
            // Frontier: nodes that may still split.
            active_ids.clear();
            for (id, node) in nodes.iter_mut().enumerate() {
                if !node.active {
                    continue;
                }
                let total: u32 = node.counts.iter().sum();
                let impurity = p.criterion.impurity(&node.counts, total);
                if impurity == 0.0 || node.depth >= p.max_depth || total < p.min_samples_split {
                    node.active = false;
                } else {
                    node.best = None;
                    active_ids.push(id as u32);
                }
            }
            if active_ids.is_empty() {
                break;
            }
            let n_active = active_ids.len();
            slot_of_node.clear();
            slot_of_node.resize(nodes.len(), u32::MAX);
            for (slot, &nid) in active_ids.iter().enumerate() {
                slot_of_node[nid as usize] = slot as u32;
            }
            totals.clear();
            totals.extend(
                active_ids.iter().map(|&nid| nodes[nid as usize].counts.iter().sum::<u32>()),
            );

            reuse_arena(&mut left_arena, nw * n_active * k, 0, &mut pool_hits);
            reuse_arena(&mut pending_arena, nw * n_active * k, 0, &mut pool_hits);
            reuse_arena(&mut meta_arena, nw * n_active, NodeScan::EMPTY, &mut pool_hits);
            reuse_arena(&mut best_arena, nw * n_active, None, &mut pool_hits);

            // Scan each attribute once; per-node incremental state.
            // One worker per contiguous ascending attribute range,
            // each confined to its own arena slices.
            if nw == 1 {
                scan_slots[0] = scan_attr_range(
                    d,
                    &p,
                    &orders,
                    0..m,
                    &node_of_row,
                    &slot_of_node,
                    &nodes,
                    &totals,
                    &active_ids,
                    &mut left_arena,
                    &mut pending_arena,
                    &mut meta_arena,
                    &mut best_arena,
                    &mut right_buf,
                    k,
                );
            } else {
                let result = crossbeam::thread::scope(|scope| {
                    let iter = left_arena
                        .chunks_mut(n_active * k)
                        .zip(pending_arena.chunks_mut(n_active * k))
                        .zip(meta_arena.chunks_mut(n_active))
                        .zip(best_arena.chunks_mut(n_active))
                        .zip(scan_slots.iter_mut())
                        .enumerate();
                    for (t, ((((left, pending), meta), best), scanned)) in iter {
                        let start = t * chunk_len;
                        let end = (start + chunk_len).min(m);
                        let (orders, node_of_row) = (&orders, &node_of_row);
                        let (slot_of_node, nodes) = (&slot_of_node, &nodes);
                        let (totals, active_ids, p) = (&totals, &active_ids, &p);
                        scope.spawn(move |_| {
                            let mut right_buf = Vec::with_capacity(k);
                            *scanned = scan_attr_range(
                                d,
                                p,
                                orders,
                                start..end,
                                node_of_row,
                                slot_of_node,
                                nodes,
                                totals,
                                active_ids,
                                left,
                                pending,
                                meta,
                                best,
                                &mut right_buf,
                                k,
                            );
                        });
                    }
                });
                if let Err(payload) = result {
                    // `fit_presorted` is a panicking API: surface the
                    // worker's payload unchanged on this thread.
                    std::panic::resume_unwind(payload);
                }
            }
            scan_rows += scan_slots.iter().sum::<u64>();

            // Serial reduction: merge per-worker winners in ascending
            // attribute-range order with the same strict `<`, which is
            // the serial attr-major first-wins order.
            for (slot, &nid) in active_ids.iter().enumerate() {
                let mut merged: Option<BestSplit> = None;
                for w in 0..nw {
                    if let Some(cand) = best_arena[w * n_active + slot] {
                        if merged.as_ref().is_none_or(|b| cand.score < b.score) {
                            merged = Some(cand);
                        }
                    }
                }
                nodes[nid as usize].best = merged;
            }

            // Materialize accepted splits, then repartition rows.
            for nid in 0..nodes.len() {
                if !nodes[nid].active {
                    continue;
                }
                let total: u32 = nodes[nid].counts.iter().sum();
                let node_impurity = p.criterion.impurity(&nodes[nid].counts, total);
                let accept = nodes[nid]
                    .best
                    .as_ref()
                    .is_some_and(|b| node_impurity - b.score > p.min_impurity_decrease);
                if !accept {
                    nodes[nid].active = false;
                    continue;
                }
                let best = nodes[nid].best.take().expect("accepted split");
                let depth = nodes[nid].depth;
                let left_id = nodes.len();
                for _ in 0..2 {
                    nodes.push(WorkNode {
                        counts: vec![0; k],
                        depth: depth + 1,
                        active: true,
                        best: None,
                        children: None,
                        split: None,
                    });
                }
                nodes[nid].children = Some((left_id, left_id + 1));
                nodes[nid].split = Some(best);
                nodes[nid].active = false;
            }
            for (row, slot) in node_of_row.iter_mut().enumerate() {
                let nid = *slot as usize;
                if let (Some((l, r)), Some(split)) =
                    (nodes[nid].children, nodes[nid].split.as_ref())
                {
                    let child = if d.value(row, split.attr) <= split.left_value { l } else { r };
                    *slot = child as u32;
                    nodes[child].counts[d.label(row).index()] += 1;
                }
            }
        }

        ppdt_obs::add(ppdt_obs::Counter::SplitScanRows, scan_rows);
        ppdt_obs::add(ppdt_obs::Counter::PoolReuseHits, pool_hits);
        DecisionTree {
            root: materialize(&nodes, 0, p.threshold_policy),
            num_classes: k,
            criterion: p.criterion,
        }
    }
}

/// One worker's per-level scan: every attribute in `attrs` (ascending),
/// dispatching each presorted row to its node's slot and maintaining
/// the incremental group/boundary state in the worker's arena slices.
/// Returns the number of `(row, attribute)` visits performed.
#[allow(clippy::too_many_arguments)]
fn scan_attr_range(
    d: &Dataset,
    p: &TreeParams,
    orders: &[Vec<u32>],
    attrs: Range<usize>,
    node_of_row: &[u32],
    slot_of_node: &[u32],
    nodes: &[WorkNode],
    totals: &[u32],
    active_ids: &[u32],
    left: &mut [u32],
    pending_left: &mut [u32],
    meta: &mut [NodeScan],
    best: &mut [Option<BestSplit>],
    right_buf: &mut Vec<u32>,
    k: usize,
) -> u64 {
    let mut scanned = 0u64;
    for a in attrs {
        let attr = AttrId(a);
        let col = d.column(attr);
        left.fill(0);
        meta.fill(NodeScan::EMPTY);

        for &row in &orders[a] {
            let nid = node_of_row[row as usize] as usize;
            let slot = slot_of_node[nid];
            if slot == u32::MAX {
                continue;
            }
            let slot = slot as usize;
            scanned += 1;
            let v = col[row as usize];
            let c = d.label(row as usize);
            let hist = slot * k..(slot + 1) * k;
            let st = &mut meta[slot];

            if st.started && v != st.cur_value {
                // The current group just completed: its mono status is
                // final, so the pending boundary (to its left) is now
                // evaluable.
                if let Some(pm) = st.pending.take() {
                    score_boundary(
                        &pending_left[hist.clone()],
                        &pm,
                        st.cur_mono,
                        &nodes[nid].counts,
                        totals[slot],
                        p,
                        attr,
                        &mut best[slot],
                        right_buf,
                    );
                }
                // The boundary after the completed group becomes
                // pending; snapshot the left histogram at this point.
                pending_left[hist.clone()].copy_from_slice(&left[hist.clone()]);
                st.pending = Some(PendingMeta {
                    left_n: st.left_n,
                    left_value: st.cur_value,
                    right_value: v,
                    left_group_mono: st.cur_mono,
                });
                st.cur_value = v;
                st.cur_mono = Some(c);
            } else if !st.started {
                st.started = true;
                st.cur_value = v;
                st.cur_mono = Some(c);
            } else if st.cur_mono != Some(c) {
                st.cur_mono = None;
            }

            left[slot * k + c.index()] += 1;
            st.left_n += 1;
        }

        // Scan end: each node's last pending boundary is evaluable
        // (its right group — the node's final group — has completed).
        for slot in 0..meta.len() {
            let st = &mut meta[slot];
            if let Some(pm) = st.pending.take() {
                let nid = active_ids[slot] as usize;
                score_boundary(
                    &pending_left[slot * k..(slot + 1) * k],
                    &pm,
                    st.cur_mono,
                    &nodes[nid].counts,
                    totals[slot],
                    p,
                    attr,
                    &mut best[slot],
                    right_buf,
                );
            }
        }
    }
    scanned
}

/// Scores one candidate boundary against the node's running best,
/// replicating `best_split_sorted`'s candidate filter and strict
/// first-wins tie-breaking (boundaries arrive in order; attributes in
/// order within each worker; workers merge in order).
#[allow(clippy::too_many_arguments)]
fn score_boundary(
    pending_left: &[u32],
    pm: &PendingMeta,
    right_group_mono: Option<ClassId>,
    node_counts: &[u32],
    total: u32,
    p: &TreeParams,
    attr: AttrId,
    best: &mut Option<BestSplit>,
    right_buf: &mut Vec<u32>,
) {
    let inside_run = match p.candidate_policy {
        CandidatePolicy::AllBoundaries => false,
        CandidatePolicy::RunBoundaries => {
            matches!((pm.left_group_mono, right_group_mono), (Some(a), Some(b)) if a == b)
        }
    };
    let left_n = pm.left_n;
    let right_n = total - left_n;
    if inside_run || left_n < p.min_samples_leaf || right_n < p.min_samples_leaf {
        return;
    }
    right_buf.clear();
    right_buf.extend(node_counts.iter().zip(pending_left).map(|(&t, &l)| t - l));
    let score = (f64::from(left_n) * p.criterion.impurity(pending_left, left_n)
        + f64::from(right_n) * p.criterion.impurity(right_buf, right_n))
        / f64::from(total);
    if best.as_ref().is_none_or(|b| score < b.score) {
        *best =
            Some(BestSplit { attr, score, left_value: pm.left_value, right_value: pm.right_value });
    }
}

fn materialize(nodes: &[WorkNode], id: usize, policy: ThresholdPolicy) -> Node {
    let node = &nodes[id];
    match (&node.children, &node.split) {
        (Some((l, r)), Some(split)) => {
            let threshold = match policy {
                ThresholdPolicy::DataValue => split.left_value,
                ThresholdPolicy::Midpoint => 0.5 * (split.left_value + split.right_value),
            };
            Node::Split {
                attr: split.attr,
                threshold,
                class_counts: node.counts.clone(),
                left: Box::new(materialize(nodes, *l, policy)),
                right: Box::new(materialize(nodes, *r, policy)),
            }
        }
        _ => {
            let mut bestc = 0usize;
            for (i, &c) in node.counts.iter().enumerate() {
                if c > node.counts[bestc] {
                    bestc = i;
                }
            }
            Node::Leaf { label: ClassId(bestc as u16), class_counts: node.counts.clone() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeParams;
    use crate::compare::{tree_diff, trees_equal};
    use crate::split::SplitCriterion;
    use ppdt_data::gen::{census_like, figure1, random_dataset, RandomDatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_recursive_builder_on_figure1() {
        let d = figure1();
        let b = TreeBuilder::default();
        assert!(trees_equal(&b.fit(&d), &b.fit_presorted(&d)));
    }

    #[test]
    fn matches_recursive_builder_on_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..30 {
            let cfg = RandomDatasetConfig {
                num_rows: 50 + trial * 7,
                num_attrs: 1 + trial % 4,
                num_classes: 2 + trial % 3,
                value_range: 3 + (trial as u64 * 5) % 40,
            };
            let d = random_dataset(&mut rng, &cfg);
            for criterion in [SplitCriterion::Gini, SplitCriterion::Entropy] {
                for policy in [ThresholdPolicy::DataValue, ThresholdPolicy::Midpoint] {
                    let params = TreeParams {
                        criterion,
                        threshold_policy: policy,
                        min_samples_leaf: 1 + (trial as u32) % 3,
                        ..Default::default()
                    };
                    let b = TreeBuilder::new(params);
                    let slow = b.fit(&d);
                    let fast = b.fit_presorted(&d);
                    assert!(
                        trees_equal(&slow, &fast),
                        "trial {trial} {criterion:?} {policy:?}: {:?}",
                        tree_diff(&slow, &fast, 0.0)
                    );
                }
            }
        }
    }

    #[test]
    fn matches_recursive_builder_with_stopping_rules() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = census_like(&mut rng, 1_200);
        for params in [
            TreeParams { max_depth: 3, ..Default::default() },
            TreeParams { min_samples_split: 50, ..Default::default() },
            TreeParams { min_impurity_decrease: 0.05, ..Default::default() },
            TreeParams { min_samples_leaf: 25, ..Default::default() },
        ] {
            let b = TreeBuilder::new(params);
            let slow = b.fit(&d);
            let fast = b.fit_presorted(&d);
            assert!(trees_equal(&slow, &fast), "{params:?}: {:?}", tree_diff(&slow, &fast, 0.0));
        }
    }

    #[test]
    fn single_class_dataset_is_one_leaf() {
        let mut b = ppdt_data::DatasetBuilder::new(ppdt_data::Schema::generated(1, 2));
        for v in 0..10 {
            b.push_row(&[v as f64], ClassId(0));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit_presorted(&d);
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_rejected() {
        let d = ppdt_data::Dataset::from_columns(
            ppdt_data::Schema::generated(1, 2),
            vec![vec![]],
            vec![],
        );
        let _ = TreeBuilder::default().fit_presorted(&d);
    }
}
