//! A presorted, breadth-first tree builder (SLIQ/SPRINT style).
//!
//! [`TreeBuilder::fit`] re-sorts each node's tuples for every
//! attribute — `O(depth · m · n log n)` worst case. This module builds
//! the **same tree, bit for bit**, with each attribute sorted once
//! globally (`O(m · n log n)` total) and every level evaluated by a
//! single `O(m · n)` pass over the presorted orders, dispatching rows
//! to their current node and maintaining per-node split-search state.
//!
//! On bushy trees (node subsets shrink geometrically) the recursive
//! builder's re-sorts are cheap and its cache locality wins — measure
//! before switching (`benches/tree_build.rs` compares both). The
//! presorted builder's complexity advantage materializes on deep,
//! unbalanced trees where large subsets persist across many levels.
//! Either way, equality with the recursive builder is a tested
//! invariant (same candidate boundaries, same scores, same first-wins
//! tie-breaking), so the two implementations cross-validate each
//! other — the main value of keeping both.

use ppdt_data::{AttrId, ClassId, Dataset};

use crate::builder::{ThresholdPolicy, TreeBuilder, TreeParams};
use crate::split::CandidatePolicy;
use crate::tree::{DecisionTree, Node};

/// Split-search state for one active node while scanning one
/// attribute's sorted order.
struct ScanState {
    /// Accumulated class histogram of rows seen so far (left side).
    left: Vec<u32>,
    /// Rows seen so far.
    left_n: u32,
    /// Value of the group currently being consumed.
    cur_value: f64,
    /// Single label of the current group, while it is monochromatic.
    cur_mono: Option<ClassId>,
    /// Whether any row has been seen.
    started: bool,
    /// Pending boundary between the previous and current group,
    /// evaluable once the current group completes (the boundary's
    /// right-group mono status is `cur_mono` at that moment).
    pending: Option<Pending>,
}

struct Pending {
    /// Left histogram snapshot at the boundary.
    left: Vec<u32>,
    /// Rows on the left of the boundary.
    left_n: u32,
    /// Largest value on the left.
    left_value: f64,
    /// Smallest value on the right.
    right_value: f64,
    /// Mono label of the group left of the boundary.
    left_group_mono: Option<ClassId>,
}

/// Best split found for a node so far (attr-major, then boundary-major
/// first-wins tie-breaking, matching `best_split_sorted`).
#[derive(Clone)]
struct BestSplit {
    attr: AttrId,
    score: f64,
    left_value: f64,
    right_value: f64,
}

struct WorkNode {
    counts: Vec<u32>,
    depth: usize,
    /// On the active frontier this level.
    active: bool,
    best: Option<BestSplit>,
    children: Option<(usize, usize)>,
    split: Option<BestSplit>,
}

impl TreeBuilder {
    /// Trains the same tree as [`TreeBuilder::fit`] — bit for bit —
    /// using the presorted breadth-first algorithm (see the module
    /// docs for when this wins).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit_presorted(&self, d: &Dataset) -> DecisionTree {
        assert!(d.num_rows() > 0, "cannot fit a tree on an empty dataset");
        let p = *self.params();
        let n = d.num_rows();
        let k = d.num_classes();
        let m = d.num_attrs();

        // One global sort per attribute.
        let orders: Vec<Vec<u32>> = (0..m)
            .map(|a| {
                let col = d.column(AttrId(a));
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_unstable_by(|&i, &j| col[i as usize].total_cmp(&col[j as usize]));
                order
            })
            .collect();

        let mut root_counts = vec![0u32; k];
        for c in d.labels() {
            root_counts[c.index()] += 1;
        }
        let mut nodes: Vec<WorkNode> = vec![WorkNode {
            counts: root_counts,
            depth: 0,
            active: true,
            best: None,
            children: None,
            split: None,
        }];
        let mut node_of_row = vec![0u32; n];

        loop {
            // Frontier: nodes that may still split.
            let mut any_active = false;
            for node in nodes.iter_mut() {
                if node.active {
                    let total: u32 = node.counts.iter().sum();
                    let impurity = p.criterion.impurity(&node.counts, total);
                    if impurity == 0.0 || node.depth >= p.max_depth || total < p.min_samples_split {
                        node.active = false;
                    } else {
                        node.best = None;
                        any_active = true;
                    }
                }
            }
            if !any_active {
                break;
            }

            // Scan each attribute once; per-node incremental state.
            for (a, order) in orders.iter().enumerate() {
                let col = d.column(AttrId(a));
                let mut states: Vec<Option<ScanState>> = Vec::with_capacity(nodes.len());
                states.resize_with(nodes.len(), || None);

                for &row in order {
                    let nid = node_of_row[row as usize] as usize;
                    if !nodes[nid].active {
                        continue;
                    }
                    let v = col[row as usize];
                    let c = d.label(row as usize);
                    let node_counts_total: u32 = nodes[nid].counts.iter().sum();
                    let state = states[nid].get_or_insert_with(|| ScanState {
                        left: vec![0; k],
                        left_n: 0,
                        cur_value: f64::NAN,
                        cur_mono: None,
                        started: false,
                        pending: None,
                    });

                    if state.started && v != state.cur_value {
                        // The current group just completed: its mono
                        // status is final, so the pending boundary (to
                        // its left) is now evaluable.
                        if let Some(pending) = state.pending.take() {
                            let WorkNode { counts, best, .. } = &mut nodes[nid];
                            score_boundary(
                                &pending,
                                state.cur_mono,
                                counts,
                                node_counts_total,
                                &p,
                                AttrId(a),
                                best,
                            );
                        }
                        // The boundary after the completed group
                        // becomes pending.
                        state.pending = Some(Pending {
                            left: state.left.clone(),
                            left_n: state.left_n,
                            left_value: state.cur_value,
                            right_value: v,
                            left_group_mono: state.cur_mono,
                        });
                        state.cur_value = v;
                        state.cur_mono = Some(c);
                    } else if !state.started {
                        state.started = true;
                        state.cur_value = v;
                        state.cur_mono = Some(c);
                    } else if state.cur_mono != Some(c) {
                        state.cur_mono = None;
                    }

                    state.left[c.index()] += 1;
                    state.left_n += 1;
                }

                // Scan end: each node's last pending boundary is
                // evaluable (its right group — the node's final group —
                // has completed).
                for (nid, state) in states.iter_mut().enumerate() {
                    if let Some(state) = state {
                        if let Some(pending) = state.pending.take() {
                            let WorkNode { counts, best, .. } = &mut nodes[nid];
                            let total: u32 = counts.iter().sum();
                            score_boundary(
                                &pending,
                                state.cur_mono,
                                counts,
                                total,
                                &p,
                                AttrId(a),
                                best,
                            );
                        }
                    }
                }
            }

            // Materialize accepted splits, then repartition rows.
            for nid in 0..nodes.len() {
                if !nodes[nid].active {
                    continue;
                }
                let total: u32 = nodes[nid].counts.iter().sum();
                let node_impurity = p.criterion.impurity(&nodes[nid].counts, total);
                let accept = nodes[nid]
                    .best
                    .as_ref()
                    .is_some_and(|b| node_impurity - b.score > p.min_impurity_decrease);
                if !accept {
                    nodes[nid].active = false;
                    continue;
                }
                let best = nodes[nid].best.take().expect("accepted split");
                let depth = nodes[nid].depth;
                let left_id = nodes.len();
                for _ in 0..2 {
                    nodes.push(WorkNode {
                        counts: vec![0; k],
                        depth: depth + 1,
                        active: true,
                        best: None,
                        children: None,
                        split: None,
                    });
                }
                nodes[nid].children = Some((left_id, left_id + 1));
                nodes[nid].split = Some(best);
                nodes[nid].active = false;
            }
            for (row, slot) in node_of_row.iter_mut().enumerate() {
                let nid = *slot as usize;
                if let (Some((l, r)), Some(split)) =
                    (nodes[nid].children, nodes[nid].split.as_ref())
                {
                    let child = if d.value(row, split.attr) <= split.left_value { l } else { r };
                    *slot = child as u32;
                    nodes[child].counts[d.label(row).index()] += 1;
                }
            }
        }

        DecisionTree {
            root: materialize(&nodes, 0, p.threshold_policy),
            num_classes: k,
            criterion: p.criterion,
        }
    }
}

/// Scores one candidate boundary against the node's running best,
/// replicating `best_split_sorted`'s candidate filter and strict
/// first-wins tie-breaking (boundaries arrive in order; attributes in
/// order).
#[allow(clippy::too_many_arguments)]
fn score_boundary(
    pending: &Pending,
    right_group_mono: Option<ClassId>,
    node_counts: &[u32],
    total: u32,
    p: &TreeParams,
    attr: AttrId,
    best: &mut Option<BestSplit>,
) {
    let inside_run = match p.candidate_policy {
        CandidatePolicy::AllBoundaries => false,
        CandidatePolicy::RunBoundaries => {
            matches!((pending.left_group_mono, right_group_mono), (Some(a), Some(b)) if a == b)
        }
    };
    let left_n = pending.left_n;
    let right_n = total - left_n;
    if inside_run || left_n < p.min_samples_leaf || right_n < p.min_samples_leaf {
        return;
    }
    let right: Vec<u32> = node_counts.iter().zip(&pending.left).map(|(&t, &l)| t - l).collect();
    let score = (f64::from(left_n) * p.criterion.impurity(&pending.left, left_n)
        + f64::from(right_n) * p.criterion.impurity(&right, right_n))
        / f64::from(total);
    if best.as_ref().is_none_or(|b| score < b.score) {
        *best = Some(BestSplit {
            attr,
            score,
            left_value: pending.left_value,
            right_value: pending.right_value,
        });
    }
}

fn materialize(nodes: &[WorkNode], id: usize, policy: ThresholdPolicy) -> Node {
    let node = &nodes[id];
    match (&node.children, &node.split) {
        (Some((l, r)), Some(split)) => {
            let threshold = match policy {
                ThresholdPolicy::DataValue => split.left_value,
                ThresholdPolicy::Midpoint => 0.5 * (split.left_value + split.right_value),
            };
            Node::Split {
                attr: split.attr,
                threshold,
                class_counts: node.counts.clone(),
                left: Box::new(materialize(nodes, *l, policy)),
                right: Box::new(materialize(nodes, *r, policy)),
            }
        }
        _ => {
            let mut bestc = 0usize;
            for (i, &c) in node.counts.iter().enumerate() {
                if c > node.counts[bestc] {
                    bestc = i;
                }
            }
            Node::Leaf { label: ClassId(bestc as u16), class_counts: node.counts.clone() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeParams;
    use crate::compare::{tree_diff, trees_equal};
    use crate::split::SplitCriterion;
    use ppdt_data::gen::{census_like, figure1, random_dataset, RandomDatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_recursive_builder_on_figure1() {
        let d = figure1();
        let b = TreeBuilder::default();
        assert!(trees_equal(&b.fit(&d), &b.fit_presorted(&d)));
    }

    #[test]
    fn matches_recursive_builder_on_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..30 {
            let cfg = RandomDatasetConfig {
                num_rows: 50 + trial * 7,
                num_attrs: 1 + trial % 4,
                num_classes: 2 + trial % 3,
                value_range: 3 + (trial as u64 * 5) % 40,
            };
            let d = random_dataset(&mut rng, &cfg);
            for criterion in [SplitCriterion::Gini, SplitCriterion::Entropy] {
                for policy in [ThresholdPolicy::DataValue, ThresholdPolicy::Midpoint] {
                    let params = TreeParams {
                        criterion,
                        threshold_policy: policy,
                        min_samples_leaf: 1 + (trial as u32) % 3,
                        ..Default::default()
                    };
                    let b = TreeBuilder::new(params);
                    let slow = b.fit(&d);
                    let fast = b.fit_presorted(&d);
                    assert!(
                        trees_equal(&slow, &fast),
                        "trial {trial} {criterion:?} {policy:?}: {:?}",
                        tree_diff(&slow, &fast, 0.0)
                    );
                }
            }
        }
    }

    #[test]
    fn matches_recursive_builder_with_stopping_rules() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = census_like(&mut rng, 1_200);
        for params in [
            TreeParams { max_depth: 3, ..Default::default() },
            TreeParams { min_samples_split: 50, ..Default::default() },
            TreeParams { min_impurity_decrease: 0.05, ..Default::default() },
            TreeParams { min_samples_leaf: 25, ..Default::default() },
        ] {
            let b = TreeBuilder::new(params);
            let slow = b.fit(&d);
            let fast = b.fit_presorted(&d);
            assert!(trees_equal(&slow, &fast), "{params:?}: {:?}", tree_diff(&slow, &fast, 0.0));
        }
    }

    #[test]
    fn single_class_dataset_is_one_leaf() {
        let mut b = ppdt_data::DatasetBuilder::new(ppdt_data::Schema::generated(1, 2));
        for v in 0..10 {
            b.push_row(&[v as f64], ClassId(0));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit_presorted(&d);
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_rejected() {
        let d = ppdt_data::Dataset::from_columns(
            ppdt_data::Schema::generated(1, 2),
            vec![vec![]],
            vec![],
        );
        let _ = TreeBuilder::default().fit_presorted(&d);
    }
}
