//! Rule extraction: render a decision tree as an ordered list of
//! human-readable IF-THEN rules with coverage and confidence — the
//! form in which a custodian typically reports the mined model.
//!
//! Each root-to-leaf path becomes one rule; conditions on the same
//! attribute are merged into a single interval (`lo < A ≤ hi`), which
//! is both shorter and exactly what the output-privacy analysis treats
//! as one protected quantity per attribute.

use std::fmt::Write as _;

use ppdt_data::Schema;

use crate::tree::{DecisionTree, PathOp, TreePath};

/// One extracted rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Per-attribute merged bounds: `(attr index, lower-exclusive,
    /// upper-inclusive)`; infinities mark open sides.
    pub bounds: Vec<(usize, f64, f64)>,
    /// Predicted class index.
    pub class: usize,
    /// Training tuples covered by the rule's leaf.
    pub coverage: u32,
    /// Fraction of covered tuples carrying the predicted class.
    pub confidence: f64,
}

/// Extracts the rules of a tree, ordered by descending coverage.
pub fn extract_rules(tree: &DecisionTree) -> Vec<Rule> {
    let mut rules: Vec<Rule> = tree.paths().iter().map(rule_of_path).collect();
    rules.sort_by(|a, b| b.coverage.cmp(&a.coverage).then(a.class.cmp(&b.class)));
    rules
}

fn rule_of_path(path: &TreePath) -> Rule {
    // Merge conditions per attribute into (lo, hi].
    let mut bounds: Vec<(usize, f64, f64)> = Vec::new();
    for c in &path.conditions {
        let a = c.attr.index();
        let entry = match bounds.iter_mut().find(|(i, _, _)| *i == a) {
            Some(e) => e,
            None => {
                bounds.push((a, f64::NEG_INFINITY, f64::INFINITY));
                bounds.last_mut().expect("just pushed")
            }
        };
        match c.op {
            PathOp::Le => entry.2 = entry.2.min(c.threshold),
            PathOp::Gt => entry.1 = entry.1.max(c.threshold),
        }
    }
    bounds.sort_by_key(|&(a, _, _)| a);
    Rule {
        bounds,
        class: path.label.index(),
        coverage: path.count,
        // Leaf histograms are not in TreePath; confidence is filled by
        // the caller-facing `extract_rules_with_confidence` below. The
        // plain extraction sets 1.0 as a placeholder replaced there.
        confidence: 1.0,
    }
}

/// Extracts rules with real confidences (requires the tree, which
/// holds leaf histograms) and renders them as text.
pub fn render_rules(tree: &DecisionTree, schema: Option<&Schema>) -> String {
    // Walk the tree in path order to pair leaf histograms with rules.
    let paths = tree.paths();
    let mut leaf_conf: Vec<f64> = Vec::with_capacity(paths.len());
    collect_confidences(&tree.root, &mut leaf_conf);

    let mut rules: Vec<(Rule, f64)> =
        paths.iter().zip(leaf_conf).map(|(p, conf)| (rule_of_path(p), conf)).collect();
    rules.sort_by(|a, b| b.0.coverage.cmp(&a.0.coverage).then(a.0.class.cmp(&b.0.class)));

    let mut out = String::new();
    for (i, (rule, conf)) in rules.iter().enumerate() {
        let _ = write!(out, "R{}: IF ", i + 1);
        if rule.bounds.is_empty() {
            out.push_str("true");
        }
        for (j, &(a, lo, hi)) in rule.bounds.iter().enumerate() {
            if j > 0 {
                out.push_str(" AND ");
            }
            let name = schema
                .map(|s| s.attr_name(ppdt_data::AttrId(a)).to_string())
                .unwrap_or_else(|| format!("A{a}"));
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => {
                    let _ = write!(out, "{lo} < {name} <= {hi}");
                }
                (true, false) => {
                    let _ = write!(out, "{name} > {lo}");
                }
                (false, true) => {
                    let _ = write!(out, "{name} <= {hi}");
                }
                (false, false) => out.push_str("true"),
            }
        }
        let class = schema
            .map(|s| s.class_name(ppdt_data::ClassId(rule.class as u16)).to_string())
            .unwrap_or_else(|| format!("c{}", rule.class));
        let _ = writeln!(
            out,
            " THEN {class}  [coverage {}, confidence {:.1}%]",
            rule.coverage,
            100.0 * conf
        );
    }
    out
}

fn collect_confidences(node: &crate::tree::Node, out: &mut Vec<f64>) {
    match node {
        crate::tree::Node::Leaf { class_counts, label } => {
            let total: u32 = class_counts.iter().sum();
            let hit = class_counts[label.index()];
            out.push(if total == 0 { 1.0 } else { f64::from(hit) / f64::from(total) });
        }
        crate::tree::Node::Split { left, right, .. } => {
            collect_confidences(left, out);
            collect_confidences(right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use ppdt_data::gen::figure1;
    use ppdt_data::{ClassId, DatasetBuilder, Schema};

    #[test]
    fn figure1_rules() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let rules = extract_rules(&t);
        assert_eq!(rules.len(), t.num_leaves());
        // Highest-coverage rule first: the High leaf covers 4 tuples.
        assert_eq!(rules[0].coverage, 4);
        assert_eq!(rules[0].class, 0);
        let total: u32 = rules.iter().map(|r| r.coverage).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn conditions_merge_into_intervals() {
        // Force a path with two conditions on the same attribute:
        // values 0..30, class 1 only in (10, 20].
        let mut b = DatasetBuilder::new(Schema::generated(1, 2));
        for v in 0..30 {
            let c = u16::from(v > 10 && v <= 20);
            b.push_row(&[v as f64], ClassId(c));
        }
        let d = b.build();
        let t = TreeBuilder::default().fit(&d);
        let rules = extract_rules(&t);
        let middle = rules.iter().find(|r| r.class == 1).expect("middle-band rule exists");
        assert_eq!(middle.bounds.len(), 1, "merged into one interval");
        let (_, lo, hi) = middle.bounds[0];
        assert!(lo.is_finite() && hi.is_finite(), "two-sided interval");
        assert!(lo < hi);
    }

    #[test]
    fn render_contains_names_and_stats() {
        let d = figure1();
        let t = TreeBuilder::default().fit(&d);
        let text = render_rules(&t, Some(d.schema()));
        assert!(text.contains("R1: IF "));
        assert!(text.contains("salary"));
        assert!(text.contains("THEN High"));
        assert!(text.contains("confidence 100.0%"));
        assert_eq!(text.lines().count(), t.num_leaves());
    }

    #[test]
    fn stump_renders_true_rule() {
        let d = figure1();
        let t = TreeBuilder::new(crate::builder::TreeParams { max_depth: 0, ..Default::default() })
            .fit(&d);
        let text = render_rules(&t, Some(d.schema()));
        assert!(text.contains("IF true THEN High"));
    }
}
