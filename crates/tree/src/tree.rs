//! The decision-tree structure: nodes, prediction, paths, traversal.

use std::fmt;

use serde::{Deserialize, Serialize};

use ppdt_data::{AttrId, ClassId, Dataset};
use ppdt_error::PpdtError;

use crate::split::SplitCriterion;

/// A decision-tree node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf predicting `label`.
    Leaf {
        /// Majority class at the leaf.
        label: ClassId,
        /// Class histogram of the training tuples reaching the leaf.
        class_counts: Vec<u32>,
    },
    /// An internal binary split: tuples with `attr ≤ threshold` go
    /// left, the rest go right.
    Split {
        /// Split attribute.
        attr: AttrId,
        /// Split threshold (a data value under
        /// [`crate::ThresholdPolicy::DataValue`], a midpoint under
        /// [`crate::ThresholdPolicy::Midpoint`]).
        threshold: f64,
        /// Class histogram of the training tuples reaching this node.
        class_counts: Vec<u32>,
        /// Left subtree (`attr ≤ threshold`).
        left: Box<Node>,
        /// Right subtree (`attr > threshold`).
        right: Box<Node>,
    },
}

impl Node {
    /// Class histogram of the training tuples reaching this node.
    pub fn class_counts(&self) -> &[u32] {
        match self {
            Node::Leaf { class_counts, .. } | Node::Split { class_counts, .. } => class_counts,
        }
    }

    /// Number of training tuples reaching this node.
    pub fn count(&self) -> u32 {
        self.class_counts().iter().sum()
    }

    /// Majority class of the tuples reaching this node (ties broken
    /// towards the lower class id, deterministically).
    pub fn majority(&self) -> ClassId {
        let counts = self.class_counts();
        let mut best = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        ClassId(best as u16)
    }
}

/// A trained decision tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Root node.
    pub root: Node,
    /// Number of classes the tree distinguishes.
    pub num_classes: usize,
    /// The criterion the tree was trained with.
    pub criterion: SplitCriterion,
}

impl DecisionTree {
    /// Predicts the class of a tuple given by its attribute values.
    ///
    /// # Panics
    /// Panics if `values` is shorter than the largest attribute index
    /// used by the tree.
    pub fn predict(&self, values: &[f64]) -> ClassId {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split { attr, threshold, left, right, .. } => {
                    node = if values[attr.index()] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Fraction of tuples of `d` the tree classifies correctly.
    pub fn accuracy(&self, d: &Dataset) -> f64 {
        if d.num_rows() == 0 {
            return 1.0;
        }
        let mut values = vec![0.0; d.num_attrs()];
        let mut hits = 0usize;
        for row in 0..d.num_rows() {
            for (a, v) in values.iter_mut().enumerate() {
                *v = d.value(row, AttrId(a));
            }
            if self.predict(&values) == d.label(row) {
                hits += 1;
            }
        }
        hits as f64 / d.num_rows() as f64
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => rec(left) + rec(right),
            }
        }
        rec(&self.root)
    }

    /// Number of nodes (internal + leaves).
    pub fn num_nodes(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + rec(left) + rec(right),
            }
        }
        rec(&self.root)
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(left).max(rec(right)),
            }
        }
        rec(&self.root)
    }

    /// All root-to-leaf paths. A path of length `h` is the conjunction
    /// `∧ A_i θ_i v_i` of Definition 3 — the unit of output privacy.
    pub fn paths(&self) -> Vec<TreePath> {
        let mut out = Vec::new();
        let mut conds = Vec::new();
        fn rec(n: &Node, conds: &mut Vec<PathCondition>, out: &mut Vec<TreePath>) {
            match n {
                Node::Leaf { label, class_counts } => out.push(TreePath {
                    conditions: conds.clone(),
                    label: *label,
                    count: class_counts.iter().sum(),
                }),
                Node::Split { attr, threshold, left, right, .. } => {
                    conds.push(PathCondition {
                        attr: *attr,
                        op: PathOp::Le,
                        threshold: *threshold,
                    });
                    rec(left, conds, out);
                    conds.pop();
                    conds.push(PathCondition {
                        attr: *attr,
                        op: PathOp::Gt,
                        threshold: *threshold,
                    });
                    rec(right, conds, out);
                    conds.pop();
                }
            }
        }
        rec(&self.root, &mut conds, &mut out);
        out
    }

    /// Applies `f(attr, threshold)` to every split threshold, returning
    /// the rewritten tree. This is the workhorse of [`crate::decode`].
    pub fn map_thresholds(&self, mut f: impl FnMut(AttrId, f64) -> f64) -> DecisionTree {
        fn rec(n: &Node, f: &mut impl FnMut(AttrId, f64) -> f64) -> Node {
            match n {
                Node::Leaf { .. } => n.clone(),
                Node::Split { attr, threshold, class_counts, left, right } => Node::Split {
                    attr: *attr,
                    threshold: f(*attr, *threshold),
                    class_counts: class_counts.clone(),
                    left: Box::new(rec(left, f)),
                    right: Box::new(rec(right, f)),
                },
            }
        }
        DecisionTree {
            root: rec(&self.root, &mut f),
            num_classes: self.num_classes,
            criterion: self.criterion,
        }
    }

    /// Applies `f(attr)` to every split attribute, returning the
    /// rewritten tree. Used by fault-injection tooling to build trees
    /// that reference attributes a key or dataset does not have.
    pub fn map_split_attrs(&self, mut f: impl FnMut(AttrId) -> AttrId) -> DecisionTree {
        fn rec(n: &Node, f: &mut impl FnMut(AttrId) -> AttrId) -> Node {
            match n {
                Node::Leaf { .. } => n.clone(),
                Node::Split { attr, threshold, class_counts, left, right } => Node::Split {
                    attr: f(*attr),
                    threshold: *threshold,
                    class_counts: class_counts.clone(),
                    left: Box::new(rec(left, f)),
                    right: Box::new(rec(right, f)),
                },
            }
        }
        DecisionTree {
            root: rec(&self.root, &mut f),
            num_classes: self.num_classes,
            criterion: self.criterion,
        }
    }

    /// Structural validation for trees that cross the trust boundary
    /// (e.g. a mined tree returned by the untrusted miner and loaded
    /// from disk).
    ///
    /// Checks, at every node: split thresholds are finite, attribute
    /// indices are below `num_attrs` (when given), class histograms
    /// have exactly `num_classes` entries, and leaf labels are in
    /// range. Returns the first violation as a typed
    /// [`PpdtError::TreeIncompatible`].
    pub fn validate(&self, num_attrs: Option<usize>) -> Result<(), PpdtError> {
        fn bad(detail: String) -> Result<(), PpdtError> {
            Err(PpdtError::TreeIncompatible { detail })
        }
        fn rec(
            n: &Node,
            num_attrs: Option<usize>,
            k: usize,
            depth: usize,
        ) -> Result<(), PpdtError> {
            if n.class_counts().len() != k {
                return bad(format!(
                    "node at depth {depth} has {} class counts, expected {k}",
                    n.class_counts().len()
                ));
            }
            match n {
                Node::Leaf { label, .. } => {
                    if label.index() >= k {
                        return bad(format!(
                            "leaf at depth {depth} predicts class {} of {k}",
                            label.index()
                        ));
                    }
                    Ok(())
                }
                Node::Split { attr, threshold, left, right, .. } => {
                    if !threshold.is_finite() {
                        return bad(format!(
                            "split on attribute {} at depth {depth} has non-finite threshold {threshold}",
                            attr.index()
                        ));
                    }
                    if let Some(m) = num_attrs {
                        if attr.index() >= m {
                            return bad(format!(
                                "split at depth {depth} tests unknown attribute {} (dataset has {m})",
                                attr.index()
                            ));
                        }
                    }
                    rec(left, num_attrs, k, depth + 1)?;
                    rec(right, num_attrs, k, depth + 1)
                }
            }
        }
        if self.num_classes < 2 {
            return bad(format!(
                "tree distinguishes {} class(es), need at least 2",
                self.num_classes
            ));
        }
        rec(&self.root, num_attrs, self.num_classes, 0)
    }

    /// Renders the tree as indented ASCII, one node per line.
    pub fn render(&self, schema: Option<&ppdt_data::Schema>) -> String {
        let mut s = String::new();
        fn rec(n: &Node, depth: usize, schema: Option<&ppdt_data::Schema>, s: &mut String) {
            let pad = "  ".repeat(depth);
            match n {
                Node::Leaf { label, class_counts } => {
                    let name = schema
                        .map(|sc| sc.class_name(*label).to_string())
                        .unwrap_or_else(|| label.to_string());
                    s.push_str(&format!("{pad}-> {name} {class_counts:?}\n"));
                }
                Node::Split { attr, threshold, left, right, .. } => {
                    let name = schema
                        .map(|sc| sc.attr_name(*attr).to_string())
                        .unwrap_or_else(|| attr.to_string());
                    s.push_str(&format!("{pad}{name} <= {threshold}\n"));
                    rec(left, depth + 1, schema, s);
                    s.push_str(&format!("{pad}{name} > {threshold}\n"));
                    rec(right, depth + 1, schema, s);
                }
            }
        }
        rec(&self.root, 0, schema, &mut s);
        s
    }
}

/// Comparison operator on a path condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathOp {
    /// `attr ≤ threshold` (left branch).
    Le,
    /// `attr > threshold` (right branch).
    Gt,
}

/// One conjunct `A θ v` of a root-to-leaf path.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathCondition {
    /// The attribute tested.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: PathOp,
    /// The threshold.
    pub threshold: f64,
}

/// A root-to-leaf path (Definition 3's unit of output privacy).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreePath {
    /// The conjunction of conditions from root to leaf.
    pub conditions: Vec<PathCondition>,
    /// The leaf's predicted class.
    pub label: ClassId,
    /// Training tuples reaching the leaf.
    pub count: u32,
}

impl TreePath {
    /// Path length = number of conditions (edges from the root).
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// True for the degenerate single-leaf tree's path.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }
}

impl fmt::Display for TreePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            let op = match c.op {
                PathOp::Le => "<=",
                PathOp::Gt => ">",
            };
            write!(f, "{} {} {}", c.attr, op, c.threshold)?;
        }
        write!(f, " => {}", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: u16, counts: Vec<u32>) -> Node {
        Node::Leaf { label: ClassId(label), class_counts: counts }
    }

    fn sample_tree() -> DecisionTree {
        // attr0 <= 5 ? (attr1 <= 2 ? c0 : c1) : c1
        DecisionTree {
            root: Node::Split {
                attr: AttrId(0),
                threshold: 5.0,
                class_counts: vec![3, 3],
                left: Box::new(Node::Split {
                    attr: AttrId(1),
                    threshold: 2.0,
                    class_counts: vec![3, 1],
                    left: Box::new(leaf(0, vec![3, 0])),
                    right: Box::new(leaf(1, vec![0, 1])),
                }),
                right: Box::new(leaf(1, vec![0, 2])),
            },
            num_classes: 2,
            criterion: SplitCriterion::Gini,
        }
    }

    #[test]
    fn predict_follows_branches() {
        let t = sample_tree();
        assert_eq!(t.predict(&[4.0, 1.0]), ClassId(0));
        assert_eq!(t.predict(&[4.0, 3.0]), ClassId(1));
        assert_eq!(t.predict(&[6.0, 0.0]), ClassId(1));
        // Boundary goes left.
        assert_eq!(t.predict(&[5.0, 2.0]), ClassId(0));
    }

    #[test]
    fn shape_accessors() {
        let t = sample_tree();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn paths_enumerated_in_order() {
        let t = sample_tree();
        let ps = t.paths();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].len(), 2);
        assert_eq!(ps[0].conditions[0].op, PathOp::Le);
        assert_eq!(ps[0].label, ClassId(0));
        assert_eq!(ps[2].len(), 1);
        assert_eq!(ps[2].conditions[0].op, PathOp::Gt);
        let total: u32 = ps.iter().map(|p| p.count).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn map_thresholds_rewrites_all_splits() {
        let t = sample_tree();
        let t2 = t.map_thresholds(|_, v| v * 10.0);
        assert_eq!(t2.predict(&[40.0, 10.0]), ClassId(0));
        match &t2.root {
            Node::Split { threshold, .. } => assert_eq!(*threshold, 50.0),
            _ => panic!("root must be a split"),
        }
        // Structure and counts preserved.
        assert_eq!(t2.num_nodes(), t.num_nodes());
        assert_eq!(t2.root.class_counts(), t.root.class_counts());
    }

    #[test]
    fn majority_breaks_ties_low() {
        let n = leaf(0, vec![2, 2]);
        assert_eq!(n.majority(), ClassId(0));
    }

    #[test]
    fn render_mentions_thresholds() {
        let t = sample_tree();
        let s = t.render(None);
        assert!(s.contains("A0 <= 5"));
        assert!(s.contains("-> c1"));
    }

    #[test]
    fn validate_accepts_sound_trees_and_rejects_tampered_ones() {
        let t = sample_tree();
        t.validate(Some(2)).unwrap();
        t.validate(None).unwrap();

        // Unknown attribute.
        let mut bad = t.clone();
        if let Node::Split { attr, .. } = &mut bad.root {
            *attr = AttrId(9);
        }
        assert!(matches!(bad.validate(Some(2)), Err(PpdtError::TreeIncompatible { .. })));
        // ...but passes without a schema to check against.
        bad.validate(None).unwrap();

        // Non-finite threshold.
        let mut bad = t.clone();
        if let Node::Split { threshold, .. } = &mut bad.root {
            *threshold = f64::NAN;
        }
        assert!(bad.validate(None).is_err());

        // Histogram arity.
        let mut bad = t.clone();
        if let Node::Split { class_counts, .. } = &mut bad.root {
            class_counts.push(0);
        }
        assert!(bad.validate(None).is_err());

        // Out-of-range leaf label.
        let mut bad = t.clone();
        if let Node::Split { right, .. } = &mut bad.root {
            **right = leaf(7, vec![0, 2]);
        }
        let err = bad.validate(None).unwrap_err();
        assert_eq!(err.category().exit_code(), 5);
    }

    #[test]
    fn display_path() {
        let t = sample_tree();
        let ps = t.paths();
        let s = format!("{}", ps[0]);
        assert!(s.contains("A0 <= 5"));
        assert!(s.contains("=> c0"));
    }
}
