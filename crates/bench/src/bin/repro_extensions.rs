//! Runs every extension experiment (X1-X6) in order; see
//! `EXPERIMENTS.md` for the discussion.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    use ppdt_bench::experiments as e;
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "repro_extensions");

    let ablation = e::ablation_layout(&cfg); // X1 (includes the gap-fraction sweep)
    let cascade = ablation.iter().map(|r| r.2).sum::<f64>() / ablation.len() as f64;
    report.push("ablation_cascade_risk_mean", cascade);

    let quantile = e::quantile_attack(&cfg); // X3 (X2 is fig11's extra column)
    report.push("quantile_crack_maxmp_worst", quantile.iter().map(|r| r.2).fold(0.0, f64::max));

    let spectral = e::spectral_attack(&cfg); // X5
    if let Some((_, _, after)) = spectral.first() {
        report.push("spectral_crack_filtered", *after);
    }

    let svm = e::svm_outcome(&cfg); // X4
    let agree = svm.iter().map(|r| r.svm_agreement).sum::<f64>() / svm.len() as f64;
    report.push("svm_prediction_agreement_mean", agree);

    let nb = e::nb_outcome(&cfg); // X6
    let identical = nb.iter().filter(|r| r.1).count() as f64 / nb.len() as f64;
    report.push("nb_models_identical_fraction", identical);

    report.write_if_requested(&cfg).expect("write benchmark report");
    println!("\nAll extension experiments complete.");
}
