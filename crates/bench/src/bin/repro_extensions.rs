//! Runs every extension experiment (X1-X6) in order; see
//! `EXPERIMENTS.md` for the discussion.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    use ppdt_bench::experiments as e;
    e::ablation_layout(&cfg);   // X1 (includes the gap-fraction sweep)
    e::quantile_attack(&cfg);   // X3 (X2 is fig11's extra column)
    e::spectral_attack(&cfg);   // X5
    e::svm_outcome(&cfg);       // X4
    e::nb_outcome(&cfg);        // X6
    println!("\nAll extension experiments complete.");
}
