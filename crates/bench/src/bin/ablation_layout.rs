//! X1 — layout ablation; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::ablation_layout(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "ablation_layout");
    let mean =
        |f: &dyn Fn(&(usize, f64, f64)) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    report.push("ablation_iid_risk_mean", mean(&|r| r.1));
    report.push("ablation_cascade_risk_mean", mean(&|r| r.2));
    report.write_if_requested(&cfg).expect("write benchmark report");
}
