//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    ppdt_bench::experiments::fig1(&cfg);
}
