//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let ok = ppdt_bench::experiments::fig1(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "fig1");
    report.push("fig1_decode_exact", if ok { 1.0 } else { 0.0 });
    report.write_if_requested(&cfg).expect("write benchmark report");
}
