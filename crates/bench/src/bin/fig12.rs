//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::fig12(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "fig12");
    let worst = rows.iter().map(|(_, r)| *r).fold(0.0, f64::max);
    report.push("fig12_subspace_risk_worst", worst);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
