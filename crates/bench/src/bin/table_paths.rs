//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let paths = ppdt_bench::experiments::table_paths(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "table_paths");
    report.push("pattern_risk", paths.risk());
    report.push("pattern_paths_total", paths.total_paths as f64);
    report.push("pattern_cracks_total", paths.total_cracks as f64);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
