//! X4 — SVM future-work probe; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    ppdt_bench::experiments::svm_outcome(&cfg);
}
