//! X4 — SVM future-work probe; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::svm_outcome(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "svm_outcome");
    let agree = rows.iter().map(|r| r.svm_agreement).sum::<f64>() / rows.len() as f64;
    report.push("svm_prediction_agreement_mean", agree);
    report.push("tree_prediction_agreement_mean", 1.0);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
