//! Runs every experiment (E1-E9) in order. Pass `--trials 500
//! --scale 0.1` (or `--full`) to approach the paper's setting; the
//! defaults keep the full run to a few minutes in release mode. With
//! `--json BENCH_ppdt.json` a machine-readable report (phase timings,
//! counters, headline numbers; see `BENCHMARKS.md`) is written too.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    use ppdt_bench::experiments as e;
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "repro_all");

    let fig1_ok = e::fig1(&cfg);
    report.push("fig1_decode_exact", if fig1_ok { 1.0 } else { 0.0 });

    e::fig8(&cfg);

    let fig9 = e::fig9(&cfg);
    let mean = |f: &dyn Fn(&e::Fig9Row) -> f64| fig9.iter().map(f).sum::<f64>() / fig9.len() as f64;
    report.push("fig9_domain_risk_none_expert_mean", mean(&|r| r.none_expert));
    report.push("fig9_domain_risk_maxmp_expert_mean", mean(&|r| r.choosemaxmp_expert));
    report.push("fig9_domain_risk_maxmp_ignorant_mean", mean(&|r| r.choosemaxmp_ignorant));

    e::table_fit(&cfg);

    let fig10 = e::fig10(&cfg);
    report.push("fig10_union_risk", fig10.union_risk);
    report.push("fig10_consensus_risk", fig10.consensus_risk);

    let fig11 = e::fig11(&cfg);
    let worst = fig11.iter().map(|r| r.consecutive_crack).fold(0.0, f64::max);
    report.push("fig11_sorting_crack_worst", worst);

    let fig12 = e::fig12(&cfg);
    let worst = fig12.iter().map(|(_, r)| *r).fold(0.0, f64::max);
    report.push("fig12_subspace_risk_worst", worst);

    let paths = e::table_paths(&cfg);
    report.push("pattern_risk", paths.risk());
    report.push("pattern_paths_total", paths.total_paths as f64);

    let sweep = e::outcome_sweep(&cfg);
    let (ok, runs) = sweep.iter().fold((0usize, 0usize), |(o, r), row| (o + row.ok, r + row.runs));
    report.push("outcome_sweep_exact_fraction", ok as f64 / runs.max(1) as f64);

    let contrast = e::perturbation_contrast(&cfg);
    let piecewise = contrast.last().expect("piecewise row");
    report.push("piecewise_unchanged_fraction", piecewise.1);

    report.write_if_requested(&cfg).expect("write benchmark report");
    println!("\nAll experiments complete.");
}
