//! Runs every experiment (E1-E9) in order. Pass `--trials 500
//! --scale 0.1` (or `--full`) to approach the paper's setting; the
//! defaults keep the full run to a few minutes in release mode.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    use ppdt_bench::experiments as e;
    e::fig1(&cfg);
    e::fig8(&cfg);
    e::fig9(&cfg);
    e::table_fit(&cfg);
    e::fig10(&cfg);
    e::fig11(&cfg);
    e::fig12(&cfg);
    e::table_paths(&cfg);
    e::outcome_sweep(&cfg);
    e::perturbation_contrast(&cfg);
    println!("\nAll experiments complete.");
}
