//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::fig11(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "fig11");
    let worst = rows.iter().map(|r| r.consecutive_crack).fold(0.0, f64::max);
    let worst_prop = rows.iter().map(|r| r.proportional_crack).fold(0.0, f64::max);
    report.push("fig11_sorting_crack_worst", worst);
    report.push("fig11_sorting_crack_proportional_worst", worst_prop);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
