//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let combo = ppdt_bench::experiments::fig10(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "fig10");
    report.push("fig10_union_risk", combo.union_risk);
    report.push("fig10_expected_risk", combo.expected_risk);
    report.push("fig10_consensus_risk", combo.consensus_risk);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
