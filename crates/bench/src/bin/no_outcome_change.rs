//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let sweep = ppdt_bench::experiments::outcome_sweep(&cfg);
    let contrast = ppdt_bench::experiments::perturbation_contrast(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "no_outcome_change");
    let (ok, runs) = sweep.iter().fold((0usize, 0usize), |(o, r), row| (o + row.ok, r + row.runs));
    report.push("outcome_sweep_exact_fraction", ok as f64 / runs.max(1) as f64);
    let piecewise = contrast.last().expect("piecewise row");
    report.push("piecewise_unchanged_fraction", piecewise.1);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
