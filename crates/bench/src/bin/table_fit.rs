//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let cells = ppdt_bench::experiments::table_fit(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "table_fit");
    let worst = cells.iter().map(|(_, _, r)| *r).fold(0.0, f64::max);
    report.push("table_fit_domain_risk_worst", worst);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
