//! X5 — spectral attack on the perturbation baseline.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::spectral_attack(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "spectral_attack");
    if let Some((_, before, after)) = rows.first() {
        report.push("spectral_crack_noisy", *before);
        report.push("spectral_crack_filtered", *after);
    }
    report.write_if_requested(&cfg).expect("write benchmark report");
}
