//! X5 — spectral attack on the perturbation baseline.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    ppdt_bench::experiments::spectral_attack(&cfg);
}
