//! `serve_throughput` — loopback throughput of the `ppdt-serve`
//! custodian daemon, cold path vs. warm path.
//!
//! Runs the same batched workload against **two** in-process
//! [`ppdt_serve::Server`] instances: a *cold* daemon with the plan and
//! tree caches disabled (every request re-loads, re-audits, and
//! re-compiles the key envelope; every classify re-validates the
//! tree), and a *warm* daemon with the default cache capacities (the
//! steady state a long-lived custodian actually runs in). Each daemon
//! stores a key, then serves batched `POST /v1/encode` (CSV datasets)
//! and `POST /v1/classify` (raw query rows against the mined `T'`)
//! from several concurrent loopback clients.
//!
//! A third scenario measures the **connection regimes** of the
//! event-driven serve core: the same small batched encode driven
//! through fresh one-shot connections (connect, one request, close)
//! versus pipelined keep-alive connections (one socket, bursts of
//! in-flight requests), plus a chunked *streaming* encode of the full
//! relation. The `*_fresh_*` / `*_keepalive_*` pair is gated by
//! `scripts/bench_compare.py --keepalive-ratio`.
//!
//! Emits a [`ppdt_bench::report::BenchReport`] (schema v2) under
//! `--json` — `BENCH_PR6.json` at the repo root is the committed run
//! (`BENCH_PR5.json` is the PR 5 era, pre-keep-alive). The legacy
//! `serve_encode_rows_per_sec` / `serve_classify_rows_per_sec`
//! headlines continue the old series and report the warm path; the
//! `*_cold_*` / `*_warm_*` pairs are gated by
//! `scripts/bench_compare.py --warm-ratio` (see BENCHMARKS.md).
//!
//! The timing loops themselves live in
//! [`ppdt_bencher::closedloop`] — this binary owns scenario
//! composition and reporting only. Open-loop rate sweeps (latency at
//! a controlled offered rate, 503 onset) are `ppdt-bencher`'s job.
//!
//! Usage: `serve_throughput [--smoke] [--seed N] [--clients N]
//! [--iters N] [--json PATH]`

use ppdt_bench::report::BenchReport;
use ppdt_bench::HarnessConfig;
use ppdt_bencher::closedloop::{drive, drive_keepalive, drive_streaming};
use ppdt_data::csv::{parse_csv, to_csv};
use ppdt_data::gen::{covertype_like, CovertypeConfig};
use ppdt_data::Dataset;
use ppdt_serve::handlers::{ClassifyRequest, EncodeRequest, StoreKeyRequest, StoreKeyResponse};
use ppdt_serve::{request, KeyStore, Server, ServerConfig};
use ppdt_transform::{EncodeConfig, Encoder, TransformKey};
use ppdt_tree::{DecisionTree, TreeBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Opts {
    smoke: bool,
    seed: u64,
    clients: usize,
    iters: usize,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_throughput [--smoke] [--seed N] [--clients N] [--iters N] [--json PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts { smoke: false, seed: 7, clients: 4, iters: 0, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => opts.clients = v,
                _ => usage(),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => opts.iters = v,
                _ => usage(),
            },
            "--json" => match it.next() {
                Some(v) => opts.json = Some(v),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if opts.iters == 0 {
        opts.iters = if opts.smoke { 2 } else { 12 };
    }
    opts
}

fn rows_of(d: &Dataset) -> Vec<Vec<f64>> {
    (0..d.num_rows()).map(|i| d.schema().attrs().map(|a| d.column(a)[i]).collect()).collect()
}

/// One daemon's worth of measurements.
struct ScenarioResult {
    encode_rps: f64,
    classify_rps: f64,
    workers: usize,
    rejected: u64,
    in_flight_peak: u64,
}

/// Boots a daemon with the given cache capacities, stores `key`, and
/// drives the batched encode + classify workload against it.
fn run_scenario(
    label: &str,
    opts: &Opts,
    plan_cache_capacity: usize,
    tree_cache_capacity: usize,
    d: &Dataset,
    key: &TransformKey,
    t_prime: &DecisionTree,
) -> ScenarioResult {
    let dir = std::env::temp_dir().join(format!("ppdt-serve-bench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = KeyStore::open(dir.clone()).expect("open keystore");
    let cfg = ServerConfig {
        queue_capacity: 4 * opts.clients.max(16),
        plan_cache_capacity,
        tree_cache_capacity,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg, store).expect("bind server");
    let addr = server.addr();
    let workers = server.workers();
    let metrics = server.metrics();
    let shutdown = server.shutdown_flag();
    let daemon = std::thread::spawn(move || server.run());

    let payload =
        serde_json::to_string(&StoreKeyRequest { key: key.clone() }).expect("serialize key");
    let (status, text) = request(addr, "POST", "/v1/keys", &payload).expect("store key");
    assert_eq!(status, 201, "{text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("store response");

    // Batched encode: each request carries the whole CSV relation.
    let encode_body = serde_json::to_string(&EncodeRequest {
        key_id: stored.key_id.clone(),
        csv: Some(to_csv(d)),
        rows: None,
    })
    .expect("serialize encode request");
    let encode_secs = drive(addr, opts.clients, opts.iters, "/v1/encode", &encode_body);
    let encode_rows = (opts.clients * opts.iters) as f64 * d.num_rows() as f64;

    // Batched classify: each request carries every query row.
    let classify_body = serde_json::to_string(&ClassifyRequest {
        key_id: stored.key_id.clone(),
        tree: t_prime.clone(),
        rows: rows_of(d),
    })
    .expect("serialize classify request");
    let classify_secs = drive(addr, opts.clients, opts.iters, "/v1/classify", &classify_body);
    let classify_rows = (opts.clients * opts.iters) as f64 * d.num_rows() as f64;

    // Sanity: one encoded batch parses back to the right shape.
    let (status, text) = request(addr, "POST", "/v1/encode", &encode_body).expect("final encode");
    assert_eq!(status, 200);
    let echoed: serde::Value = serde_json::from_str(&text).expect("encode response");
    let csv_back = echoed.get("csv").and_then(|c| c.as_str()).expect("csv in response");
    let d_back = parse_csv(csv_back).expect("transformed CSV parses");
    assert_eq!(d_back.num_rows(), d.num_rows());

    let snap = metrics.snapshot();
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.join().expect("daemon thread").expect("daemon run");
    let _ = std::fs::remove_dir_all(&dir);

    ScenarioResult {
        encode_rps: encode_rows / encode_secs,
        classify_rps: classify_rows / classify_secs,
        workers,
        rejected: snap.rejected,
        in_flight_peak: snap.in_flight_peak,
    }
}

/// Connection-regime measurements from one warm daemon.
struct ReuseResult {
    fresh_rps: f64,
    keepalive_rps: f64,
    stream_rps: f64,
    keepalive_reuses: u64,
    pipelined_requests: u64,
    streamed_chunks: u64,
}

/// Boots a warm daemon and drives the same small batched encode
/// through fresh one-shot connections, then pipelined keep-alive
/// connections, then a chunked streaming encode of the full relation.
fn run_reuse_scenario(opts: &Opts, d: &Dataset, key: &TransformKey) -> ReuseResult {
    let dir = std::env::temp_dir().join(format!("ppdt-serve-bench-reuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = KeyStore::open(dir.clone()).expect("open keystore");
    let cfg = ServerConfig {
        queue_capacity: 4 * opts.clients.max(16),
        // The default per-connection request cap (a hygiene recycle,
        // not a throughput knob) would close sockets mid-measurement;
        // this scenario measures the regimes, so lift it.
        keep_alive_requests: u64::MAX,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg, store).expect("bind server");
    let addr = server.addr();
    let metrics = server.metrics();
    let shutdown = server.shutdown_flag();
    let daemon = std::thread::spawn(move || server.run());

    let payload =
        serde_json::to_string(&StoreKeyRequest { key: key.clone() }).expect("serialize key");
    let (status, text) = request(addr, "POST", "/v1/keys", &payload).expect("store key");
    assert_eq!(status, 201, "{text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("store response");

    // A deliberately small request: with little work per answer, the
    // per-connection overhead is what the two regimes disagree on.
    let small_rows: Vec<Vec<f64>> = rows_of(d).into_iter().take(32).collect();
    let rows_per_req = small_rows.len() as f64;
    let body = serde_json::to_string(&EncodeRequest {
        key_id: stored.key_id.clone(),
        csv: None,
        rows: Some(small_rows),
    })
    .expect("serialize encode request");
    let reqs = (opts.iters * 25).max(50);

    let fresh_secs = drive(addr, opts.clients, reqs, "/v1/encode", &body);
    let keepalive_secs = drive_keepalive(addr, opts.clients, reqs, 8, "/v1/encode", &body);

    let csv = to_csv(d);
    let stream_iters = if opts.smoke { 1 } else { 4 };
    let stream_secs = drive_streaming(addr, &stored.key_id, &csv, stream_iters);

    let snap = metrics.snapshot();
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.join().expect("daemon thread").expect("daemon run");
    let _ = std::fs::remove_dir_all(&dir);

    let total_rows = (opts.clients * reqs) as f64 * rows_per_req;
    ReuseResult {
        fresh_rps: total_rows / fresh_secs,
        keepalive_rps: total_rows / keepalive_secs,
        stream_rps: (stream_iters * d.num_rows()) as f64 / stream_secs,
        keepalive_reuses: snap.keepalive_reuses,
        pipelined_requests: snap.pipelined_requests,
        streamed_chunks: snap.streamed_chunks,
    }
}

fn main() {
    let opts = parse_args();
    ppdt_obs::set_enabled(true);

    let scale = if opts.smoke { 0.001 } else { 0.01 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let d = covertype_like(&mut rng, &CovertypeConfig::at_scale(scale));
    let (key, d_prime) = Encoder::new(EncodeConfig::default())
        .encode(&mut rng, &d)
        .expect("encode dataset")
        .into_parts();
    let t_prime = TreeBuilder::default().fit(&d_prime);

    println!(
        "serve_throughput: {} rows x {} attrs, {} clients x {} iters",
        d.num_rows(),
        d.num_attrs(),
        opts.clients,
        opts.iters
    );

    // Cold: caches disabled — every request re-loads, re-audits, and
    // re-compiles the envelope (and re-validates the tree).
    let cold = run_scenario("cold", &opts, 0, 0, &d, &key, &t_prime);
    // Warm: default cache capacities — the steady state of a
    // long-lived custodian serving the same key and table.
    let defaults = ServerConfig::default();
    let warm = run_scenario(
        "warm",
        &opts,
        defaults.plan_cache_capacity,
        defaults.tree_cache_capacity,
        &d,
        &key,
        &t_prime,
    );

    // Connection regimes: fresh one-shot sockets vs pipelined
    // keep-alive sockets vs a chunked streaming upload.
    let reuse = run_reuse_scenario(&opts, &d, &key);

    let ratio = |w: f64, c: f64| if c > 0.0 { w / c } else { f64::INFINITY };
    let encode_ratio = ratio(warm.encode_rps, cold.encode_rps);
    let classify_ratio = ratio(warm.classify_rps, cold.classify_rps);
    let keepalive_ratio = ratio(reuse.keepalive_rps, reuse.fresh_rps);
    for (name, s) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "  {name:<5} encode {:>12.0} rows/s  classify {:>12.0} rows/s  \
             (workers={} rejected={} in_flight_peak={})",
            s.encode_rps, s.classify_rps, s.workers, s.rejected, s.in_flight_peak
        );
    }
    println!("  warm/cold: encode {encode_ratio:.2}x, classify {classify_ratio:.2}x");
    println!(
        "  small-batch encode: fresh {:>12.0} rows/s  keepalive {:>12.0} rows/s  ({:.2}x, \
         reuses={} pipelined={})",
        reuse.fresh_rps,
        reuse.keepalive_rps,
        keepalive_ratio,
        reuse.keepalive_reuses,
        reuse.pipelined_requests
    );
    println!(
        "  streaming encode: {:>12.0} rows/s ({} chunks moved)",
        reuse.stream_rps, reuse.streamed_chunks
    );
    let obs = ppdt_obs::snapshot();
    let obs_counter = |n: &str| obs.counters.iter().find(|c| c.name == n).map_or(0, |c| c.value);
    println!(
        "  caches: plan hits={} misses={} evictions={}, tree hits={}",
        obs_counter("plan_cache_hits"),
        obs_counter("plan_cache_misses"),
        obs_counter("plan_cache_evictions"),
        obs_counter("tree_cache_hits"),
    );

    let cfg = HarnessConfig { seed: opts.seed, scale, trials: opts.iters, json: opts.json.clone() };
    let mut report = BenchReport::new(&cfg, "serve_throughput");
    // Legacy series (PR 4 reports): the warm path, which is what a
    // long-lived daemon serves. Kept so old baselines still gate.
    report.push("serve_encode_rows_per_sec", warm.encode_rps);
    report.push("serve_classify_rows_per_sec", warm.classify_rps);
    // Cold-vs-warm pairs; `bench_compare.py --warm-ratio` gates these.
    report.push("serve_encode_cold_rows_per_sec", cold.encode_rps);
    report.push("serve_encode_warm_rows_per_sec", warm.encode_rps);
    report.push("serve_classify_cold_rows_per_sec", cold.classify_rps);
    report.push("serve_classify_warm_rows_per_sec", warm.classify_rps);
    report.push("serve_encode_warm_over_cold", encode_ratio);
    report.push("serve_classify_warm_over_cold", classify_ratio);
    // Connection-regime pairs; `bench_compare.py --keepalive-ratio`
    // gates the keep-alive win over fresh connections.
    report.push("serve_encode_fresh_rows_per_sec", reuse.fresh_rps);
    report.push("serve_encode_keepalive_rows_per_sec", reuse.keepalive_rps);
    report.push("serve_encode_keepalive_over_fresh", keepalive_ratio);
    report.push("serve_stream_encode_rows_per_sec", reuse.stream_rps);
    report.push("serve_keepalive_reuses", reuse.keepalive_reuses as f64);
    report.push("serve_pipelined_requests", reuse.pipelined_requests as f64);
    report.push("serve_streamed_chunks", reuse.streamed_chunks as f64);
    report.push("serve_clients", opts.clients as f64);
    report.push("serve_workers", warm.workers as f64);
    report.push("serve_requests_per_path", (opts.clients * opts.iters) as f64);
    report.push("serve_rejected", (cold.rejected + warm.rejected) as f64);
    report.push("serve_in_flight_peak", cold.in_flight_peak.max(warm.in_flight_peak) as f64);
    report.push("plan_cache_hits", obs_counter("plan_cache_hits") as f64);
    report.push("plan_cache_misses", obs_counter("plan_cache_misses") as f64);
    report.push("tree_cache_hits", obs_counter("tree_cache_hits") as f64);
    report.write_if_requested(&cfg).expect("write report");
}
