//! `serve_throughput` — loopback throughput of the `ppdt-serve`
//! custodian daemon.
//!
//! Starts an in-process [`ppdt_serve::Server`], stores a key, then
//! drives batched `POST /v1/encode` (CSV datasets) and
//! `POST /v1/classify` (raw query rows against the mined `T'`) from
//! several concurrent loopback clients, reporting rows/second and the
//! serve-layer counters. Emits a [`ppdt_bench::report::BenchReport`]
//! (schema v2) under `--json` — `BENCH_PR4.json` at the repo root is
//! the committed run; `scripts/bench_trajectory.sh --serve` wraps this
//! binary and `scripts/bench_compare.py` gates `_per_sec` headlines.
//!
//! Usage: `serve_throughput [--smoke] [--seed N] [--clients N]
//! [--iters N] [--json PATH]`

use std::time::Instant;

use ppdt_bench::report::BenchReport;
use ppdt_bench::HarnessConfig;
use ppdt_data::csv::{parse_csv, to_csv};
use ppdt_data::gen::{covertype_like, CovertypeConfig};
use ppdt_data::Dataset;
use ppdt_serve::handlers::{ClassifyRequest, EncodeRequest, StoreKeyRequest, StoreKeyResponse};
use ppdt_serve::{request, KeyStore, Server, ServerConfig};
use ppdt_transform::{encode_dataset, EncodeConfig};
use ppdt_tree::TreeBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Opts {
    smoke: bool,
    seed: u64,
    clients: usize,
    iters: usize,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_throughput [--smoke] [--seed N] [--clients N] [--iters N] [--json PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts { smoke: false, seed: 7, clients: 4, iters: 0, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => opts.clients = v,
                _ => usage(),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => opts.iters = v,
                _ => usage(),
            },
            "--json" => match it.next() {
                Some(v) => opts.json = Some(v),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if opts.iters == 0 {
        opts.iters = if opts.smoke { 2 } else { 12 };
    }
    opts
}

fn rows_of(d: &Dataset) -> Vec<Vec<f64>> {
    (0..d.num_rows()).map(|i| d.schema().attrs().map(|a| d.column(a)[i]).collect()).collect()
}

/// Fans `opts.clients` loopback clients out over `opts.iters`
/// sequential requests each, panicking on any non-200, and returns
/// elapsed seconds.
fn drive(addr: std::net::SocketAddr, clients: usize, iters: usize, path: &str, body: &str) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                for _ in 0..iters {
                    let (status, text) =
                        request(addr, "POST", path, body).expect("loopback request");
                    assert_eq!(status, 200, "POST {path}: {text}");
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

fn main() {
    let opts = parse_args();
    ppdt_obs::set_enabled(true);

    let scale = if opts.smoke { 0.001 } else { 0.01 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let d = covertype_like(&mut rng, &CovertypeConfig::at_scale(scale));
    let (key, d_prime) =
        encode_dataset(&mut rng, &d, &EncodeConfig::default()).expect("encode dataset");
    let t_prime = TreeBuilder::default().fit(&d_prime);

    let dir = std::env::temp_dir().join(format!("ppdt-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = KeyStore::open(dir.clone()).expect("open keystore");
    let cfg = ServerConfig { queue_capacity: 4 * opts.clients.max(16), ..ServerConfig::default() };
    let server = Server::bind(cfg, store).expect("bind server");
    let addr = server.addr();
    let workers = server.workers();
    let metrics = server.metrics();
    let shutdown = server.shutdown_flag();
    let daemon = std::thread::spawn(move || server.run());

    let payload = serde_json::to_string(&StoreKeyRequest { key }).expect("serialize key request");
    let (status, text) = request(addr, "POST", "/v1/keys", &payload).expect("store key");
    assert_eq!(status, 201, "{text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("store response");

    // Batched encode: each request carries the whole CSV relation.
    let encode_body = serde_json::to_string(&EncodeRequest {
        key_id: stored.key_id.clone(),
        csv: Some(to_csv(&d)),
        rows: None,
    })
    .expect("serialize encode request");
    let encode_secs = drive(addr, opts.clients, opts.iters, "/v1/encode", &encode_body);
    let encode_requests = (opts.clients * opts.iters) as f64;
    let encode_rows = encode_requests * d.num_rows() as f64;

    // Batched classify: each request carries every query row.
    let classify_body = serde_json::to_string(&ClassifyRequest {
        key_id: stored.key_id.clone(),
        tree: t_prime,
        rows: rows_of(&d),
    })
    .expect("serialize classify request");
    let classify_secs = drive(addr, opts.clients, opts.iters, "/v1/classify", &classify_body);
    let classify_requests = (opts.clients * opts.iters) as f64;
    let classify_rows = classify_requests * d.num_rows() as f64;

    // Sanity: one encoded batch parses back to the right shape.
    let (status, text) = request(addr, "POST", "/v1/encode", &encode_body).expect("final encode");
    assert_eq!(status, 200);
    let echoed: serde::Value = serde_json::from_str(&text).expect("encode response");
    let csv_back = echoed.get("csv").and_then(|c| c.as_str()).expect("csv in response");
    let d_back = parse_csv(csv_back).expect("transformed CSV parses");
    assert_eq!(d_back.num_rows(), d.num_rows());

    let snap = metrics.snapshot();
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon.join().expect("daemon thread").expect("daemon run");
    let _ = std::fs::remove_dir_all(&dir);

    let encode_rps = encode_rows / encode_secs;
    let classify_rps = classify_rows / classify_secs;
    println!(
        "serve_throughput: {} rows x {} attrs, {} workers, {} clients x {} iters",
        d.num_rows(),
        d.num_attrs(),
        workers,
        opts.clients,
        opts.iters
    );
    println!(
        "  encode:   {encode_requests:>6} requests, {encode_rows:>9} rows in {encode_secs:>7.3}s  -> {encode_rps:>12.0} rows/s"
    );
    println!(
        "  classify: {classify_requests:>6} requests, {classify_rows:>9} rows in {classify_secs:>7.3}s  -> {classify_rps:>12.0} rows/s"
    );
    println!("  serve counters: rejected={} in_flight_peak={}", snap.rejected, snap.in_flight_peak);

    let cfg = HarnessConfig { seed: opts.seed, scale, trials: opts.iters, json: opts.json.clone() };
    let mut report = BenchReport::new(&cfg, "serve_throughput");
    report.push("serve_encode_rows_per_sec", encode_rps);
    report.push("serve_classify_rows_per_sec", classify_rps);
    report.push("serve_clients", opts.clients as f64);
    report.push("serve_workers", workers as f64);
    report.push("serve_requests_encode", encode_requests);
    report.push("serve_requests_classify", classify_requests);
    report.push("serve_rejected", snap.rejected as f64);
    report.push("serve_in_flight_peak", snap.in_flight_peak as f64);
    report.write_if_requested(&cfg).expect("write report");
}
