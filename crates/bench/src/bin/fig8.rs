//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let stats = ppdt_bench::experiments::fig8(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "fig8");
    let mono = stats.iter().map(|s| s.pct_mono_values).sum::<f64>() / stats.len() as f64;
    report.push("fig8_pct_mono_values_mean", mono);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
