//! X6 — naive Bayes outcome-preservation probe.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::nb_outcome(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "nb_outcome");
    let identical = rows.iter().filter(|r| r.1).count() as f64 / rows.len() as f64;
    let agree = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    report.push("nb_models_identical_fraction", identical);
    report.push("nb_prediction_agreement_mean", agree);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
