//! X6 — naive Bayes outcome-preservation probe.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    ppdt_bench::experiments::nb_outcome(&cfg);
}
