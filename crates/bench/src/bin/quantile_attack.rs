//! X3 — quantile-matching attack; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::quantile_attack(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "quantile_attack");
    let worst_baseline = rows.iter().map(|r| r.1).fold(0.0, f64::max);
    let worst_maxmp = rows.iter().map(|r| r.2).fold(0.0, f64::max);
    report.push("quantile_crack_baseline_worst", worst_baseline);
    report.push("quantile_crack_maxmp_worst", worst_maxmp);
    report.write_if_requested(&cfg).expect("write benchmark report");
}
