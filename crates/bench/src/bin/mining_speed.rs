//! `mining_speed` — the committed mining benchmark trajectory.
//!
//! Times the recursive ([`TreeBuilder::fit`]) and presorted
//! ([`TreeBuilder::fit_presorted`]) miners at several dataset shapes
//! and thread counts, verifies every variant produces a bit-identical
//! tree, and emits a machine-readable trajectory report (its own
//! schema, versioned independently of `BenchReport` — see
//! `BENCHMARKS.md` §Trajectory). `scripts/bench_trajectory.sh` wraps
//! this binary and `scripts/bench_compare.py` diffs two reports.
//!
//! Usage: `mining_speed [--smoke] [--seed N] [--json PATH]`
//!
//! `--smoke` shrinks datasets and repetitions for CI; `--json` writes
//! the report (stdout always gets the human-readable table).

use std::time::Instant;

use ppdt_data::gen::{
    census_like, covertype_like, random_dataset, CovertypeConfig, RandomDatasetConfig,
};
use ppdt_data::{AttrId, Dataset};
use ppdt_transform::{CompiledKey, EncodeConfig, Encoder};
use ppdt_tree::{trees_equal, TreeBuilder, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Version of the trajectory report layout; independent of
/// `ppdt_bench::report::SCHEMA_VERSION` (a different artifact).
const TRAJECTORY_SCHEMA_VERSION: u64 = 1;

/// One timed (builder, thread-count) measurement within a case.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Timing {
    /// `"recursive"` (`fit`) or `"presorted"` (`fit_presorted`).
    builder: String,
    /// Worker threads requested via `TreeBuilder::with_threads`.
    threads: u64,
    /// Best-of-`reps` wall-clock milliseconds.
    millis: f64,
}

/// One dataset shape with its full measurement grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Case {
    /// Stable case name (`dataset@shape`), the comparison key.
    dataset: String,
    rows: u64,
    attrs: u64,
    timings: Vec<Timing>,
    /// serial-ms / best-parallel-ms for the recursive builder.
    speedup_recursive: f64,
    /// serial-ms / best-parallel-ms for the presorted builder.
    speedup_presorted: f64,
    /// Every variant's tree was bit-identical to the serial recursive
    /// baseline (the run aborts if not, so a written report is `true`).
    trees_equal: bool,
}

/// The whole trajectory report (`BENCH_PR3.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Trajectory {
    trajectory_schema_version: u64,
    generated_by: String,
    seed: u64,
    /// `std::thread::available_parallelism()` on the machine that ran
    /// the benchmark — speedups are only meaningful relative to this.
    cores: u64,
    smoke: bool,
    cases: Vec<Case>,
}

fn time_fit(
    build: impl Fn() -> ppdt_tree::DecisionTree,
    reps: usize,
) -> (ppdt_tree::DecisionTree, f64) {
    let mut best = f64::INFINITY;
    let mut tree = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let t = build();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        tree = Some(t);
    }
    (tree.expect("reps >= 1"), best)
}

fn run_case(name: &str, d: &Dataset, thread_counts: &[usize], reps: usize) -> Case {
    let params = TreeParams::default();
    let mut timings = Vec::new();
    let mut equal = true;

    let (baseline, serial_rec_ms) =
        time_fit(|| TreeBuilder::new(params).with_threads(Some(1)).fit(d), reps);
    timings.push(Timing { builder: "recursive".into(), threads: 1, millis: serial_rec_ms });

    let (serial_pre, serial_pre_ms) =
        time_fit(|| TreeBuilder::new(params).with_threads(Some(1)).fit_presorted(d), reps);
    equal &= trees_equal(&baseline, &serial_pre);
    timings.push(Timing { builder: "presorted".into(), threads: 1, millis: serial_pre_ms });

    let mut best_par_rec = f64::INFINITY;
    let mut best_par_pre = f64::INFINITY;
    for &t in thread_counts.iter().filter(|&&t| t > 1) {
        let (tree, ms) = time_fit(|| TreeBuilder::new(params).with_threads(Some(t)).fit(d), reps);
        equal &= trees_equal(&baseline, &tree);
        best_par_rec = best_par_rec.min(ms);
        timings.push(Timing { builder: "recursive".into(), threads: t as u64, millis: ms });

        let (tree, ms) =
            time_fit(|| TreeBuilder::new(params).with_threads(Some(t)).fit_presorted(d), reps);
        equal &= trees_equal(&baseline, &tree);
        best_par_pre = best_par_pre.min(ms);
        timings.push(Timing { builder: "presorted".into(), threads: t as u64, millis: ms });
    }

    let speedup = |serial: f64, par: f64| if par.is_finite() { serial / par } else { 1.0 };
    Case {
        dataset: name.to_string(),
        rows: d.num_rows() as u64,
        attrs: d.num_attrs() as u64,
        timings,
        speedup_recursive: speedup(serial_rec_ms, best_par_rec),
        speedup_presorted: speedup(serial_pre_ms, best_par_pre),
        trees_equal: equal,
    }
}

/// Times the custodian's cell-level encode hot path three ways — the
/// interpreted [`ppdt_transform::TransformKey`] (per-value piece
/// lookup + enum dispatch), the lowered [`CompiledKey`] driven one
/// value at a time (`encode_value`: flat arrays, but a piece lookup
/// and opcode walk per cell), and the batched `encode_column` path
/// (run bucketing + opcode-outer loops + direct-index lookup) —
/// reusing the `Case`/`Timing` grid so `scripts/bench_compare.py`
/// gates all three series. `trees_equal` here records that the paths
/// produced bit-identical columns (the run aborts if not, mirroring
/// the mining cases).
fn run_encode_case(name: &str, d: &Dataset, config: EncodeConfig, seed: u64, reps: usize) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let (key, d_prime) = Encoder::new(config)
        .encode(&mut rng, d)
        .expect("encode for compiled-plan case")
        .into_parts();
    let plan = CompiledKey::compile(&key).expect("audited key compiles");

    let attrs: Vec<AttrId> = d.schema().attrs().collect();
    let time_once = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64() * 1e3
    };

    // The three paths are timed interleaved, one round each, taking
    // every path's best round: the gated quantity is their *ratio*,
    // and interleaving keeps a slow scheduling window from landing on
    // one path's whole block and skewing it.
    let mut interp_cols: Vec<Vec<f64>> = Vec::new();
    let mut per_value_cols: Vec<Vec<f64>> = Vec::new();
    let mut compiled_cols: Vec<Vec<f64>> = vec![Vec::new(); attrs.len()];
    let (mut interp_ms, mut per_value_ms, mut compiled_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        interp_ms = interp_ms.min(time_once(&mut || {
            interp_cols = attrs
                .iter()
                .map(|&a| {
                    d.column(a)
                        .iter()
                        .map(|&x| key.encode_value(a, x).expect("in-domain value"))
                        .collect()
                })
                .collect();
        }));
        per_value_ms = per_value_ms.min(time_once(&mut || {
            per_value_cols = attrs
                .iter()
                .map(|&a| {
                    d.column(a)
                        .iter()
                        .map(|&x| plan.encode_value(a, x).expect("in-domain value"))
                        .collect()
                })
                .collect();
        }));
        compiled_ms = compiled_ms.min(time_once(&mut || {
            for (buf, &a) in compiled_cols.iter_mut().zip(&attrs) {
                plan.encode_column(a, d.column(a), buf).expect("in-domain column");
            }
        }));
    }

    let identical = attrs.iter().enumerate().all(|(i, &a)| {
        interp_cols[i].iter().zip(&compiled_cols[i]).all(|(x, y)| x.to_bits() == y.to_bits())
            && per_value_cols[i]
                .iter()
                .zip(&compiled_cols[i])
                .all(|(x, y)| x.to_bits() == y.to_bits())
            && compiled_cols[i]
                .iter()
                .zip(d_prime.column(a))
                .all(|(x, y)| x.to_bits() == y.to_bits())
    });

    // `speedup_recursive` carries interpreted/batched, `speedup_presorted`
    // per-value-compiled/batched — the headline batching win.
    Case {
        dataset: name.to_string(),
        rows: d.num_rows() as u64,
        attrs: d.num_attrs() as u64,
        timings: vec![
            Timing { builder: "encode_interpreted".into(), threads: 1, millis: interp_ms },
            Timing {
                builder: "encode_compiled_per_value".into(),
                threads: 1,
                millis: per_value_ms,
            },
            Timing { builder: "encode_compiled_batched".into(), threads: 1, millis: compiled_ms },
        ],
        speedup_recursive: interp_ms / compiled_ms,
        speedup_presorted: per_value_ms / compiled_ms,
        trees_equal: identical,
    }
}

fn main() {
    let mut smoke = false;
    let mut seed = 7u64;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a u64 value"))
            }
            "--json" => json = Some(args.next().unwrap_or_else(|| usage("--json needs a path"))),
            "--help" | "-h" => {
                eprintln!("usage: mining_speed [--smoke] [--seed N] [--json PATH]");
                return;
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Serial, two workers, and everything the machine has; deduped.
    let mut thread_counts = vec![1usize, 2, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let reps = if smoke { 1 } else { 3 };
    let scale = if smoke { 0.005 } else { 0.02 };
    let census_rows = if smoke { 1_500 } else { 8_000 };
    let wide = RandomDatasetConfig {
        num_rows: if smoke { 1_000 } else { 4_000 },
        num_attrs: 24,
        num_classes: 4,
        value_range: 64,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let cases_in: Vec<(String, Dataset)> = vec![
        (format!("covertype@{scale}"), covertype_like(&mut rng, &CovertypeConfig::at_scale(scale))),
        (format!("census@{census_rows}"), census_like(&mut rng, census_rows)),
        (
            format!("random_wide@{}x{}", wide.num_rows, wide.num_attrs),
            random_dataset(&mut rng, &wide),
        ),
    ];

    println!("mining_speed: {} cores, threads {:?}, reps {}", cores, thread_counts, reps);
    let mut cases = Vec::new();
    for (name, d) in &cases_in {
        let case = run_case(name, d, &thread_counts, reps);
        assert!(
            case.trees_equal,
            "{name}: a parallel or presorted variant diverged from the serial tree"
        );
        for t in &case.timings {
            println!(
                "  {:<28} {:>9} threads={} {:>9.2} ms",
                case.dataset, t.builder, t.threads, t.millis
            );
        }
        println!(
            "  {:<28} speedup recursive {:.2}x, presorted {:.2}x",
            case.dataset, case.speedup_recursive, case.speedup_presorted
        );
        cases.push(case);
    }

    // The custodian-side encode hot path: interpreted key vs. the
    // compiled plan the serve daemon caches, per-value vs. batched.
    // Covertype and census under the default mixed family (the
    // realistic profile — part of every value's cost is a scalar libm
    // call no batching can amortize). The census dataset here is
    // larger than the tree-building one: its wide integer domains only
    // compile to the hundreds of pieces that stress piece lookup once
    // enough rows populate them.
    let census_encode_rows = if smoke { 1_500 } else { 20_000 };
    let census_encode = census_like(&mut rng, census_encode_rows);
    let encode_cases = [
        (format!("encode@covertype@{scale}"), &cases_in[0].1, EncodeConfig::default()),
        (format!("encode@census@{census_encode_rows}"), &census_encode, EncodeConfig::default()),
    ];
    // Encode reps run hotter than the mining cases: a single encode
    // pass is milliseconds, so best-of-10 costs little and keeps the
    // gated batched/per-value ratio stable against scheduler noise.
    let encode_reps = if smoke { 1 } else { 10 };
    for (name, d, config) in encode_cases {
        let encode_case = run_encode_case(&name, d, config, seed, encode_reps);
        assert!(
            encode_case.trees_equal,
            "compiled encode diverged bit-wise from the interpreted path"
        );
        for t in &encode_case.timings {
            println!(
                "  {:<28} {:>25} threads={} {:>9.2} ms",
                encode_case.dataset, t.builder, t.threads, t.millis
            );
        }
        println!(
            "  {:<28} batched vs interpreted {:.2}x, batched vs per-value compiled {:.2}x",
            encode_case.dataset, encode_case.speedup_recursive, encode_case.speedup_presorted
        );
        cases.push(encode_case);
    }

    let report = Trajectory {
        trajectory_schema_version: TRAJECTORY_SCHEMA_VERSION,
        generated_by: "mining_speed".into(),
        seed,
        cores: cores as u64,
        smoke,
        cases,
    };
    if let Some(path) = json {
        let text = serde_json::to_string_pretty(&report).expect("trajectory serializes");
        std::fs::write(&path, text).expect("trajectory report written");
        eprintln!("trajectory report -> {path}");
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}; usage: mining_speed [--smoke] [--seed N] [--json PATH]");
    std::process::exit(2);
}
