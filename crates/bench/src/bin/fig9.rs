//! Regenerates the paper artifact; see `ppdt-bench` docs for flags.
fn main() {
    let cfg = ppdt_bench::HarnessConfig::from_args();
    eprintln!("config: {cfg:?}");
    let rows = ppdt_bench::experiments::fig9(&cfg);
    let mut report = ppdt_bench::report::BenchReport::new(&cfg, "fig9");
    let mean = |f: &dyn Fn(&ppdt_bench::experiments::Fig9Row) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    report.push("fig9_domain_risk_none_expert_mean", mean(&|r| r.none_expert));
    report.push("fig9_domain_risk_bp_expert_mean", mean(&|r| r.choosebp_expert));
    report.push("fig9_domain_risk_maxmp_expert_mean", mean(&|r| r.choosemaxmp_expert));
    report.push("fig9_domain_risk_maxmp_ignorant_mean", mean(&|r| r.choosemaxmp_ignorant));
    report.write_if_requested(&cfg).expect("write benchmark report");
}
