//! Machine-readable benchmark reports — the `--json <path>` output.
//!
//! Every experiment binary can serialize a [`BenchReport`] (by
//! convention to `BENCH_ppdt.json`): the harness configuration,
//! dataset scale, headline result numbers, and the full
//! [`ppdt_obs::MetricsSnapshot`] — per-phase wall-clock timings
//! (encode / mine / decode / attack / risk), pipeline counters, and
//! peak RSS. The field-by-field schema is documented in
//! `BENCHMARKS.md`; [`SCHEMA_VERSION`] is bumped on any breaking
//! change so downstream tooling can compare runs safely.

use serde::{Deserialize, Serialize};

use crate::HarnessConfig;

/// Version of the report schema; bumped on breaking layout changes.
///
/// History: v1 (PR 1) — initial layout; v2 (PR 3) — added the
/// `threads` field and the three mining counters (`split_scan_rows`,
/// `mining_threads`, `pool_reuse_hits`) to the counter list. v1
/// reports still parse (`threads` reads back as `None`; the counter
/// list was always order-stable but open-ended).
pub const SCHEMA_VERSION: u64 = 2;

/// One named headline result (a risk, an agreement rate, a count).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Stable snake_case metric name (see `BENCHMARKS.md`).
    pub name: String,
    /// The value; fractions are reported in `[0, 1]`, not percent.
    pub value: f64,
}

/// The complete report a benchmark binary emits under `--json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Name of the emitting binary (e.g. `"repro_all"`).
    pub binary: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Dataset scale (fraction of the 581,012-row covertype benchmark).
    pub scale: f64,
    /// Trials per reported figure.
    pub trials: u64,
    /// Rows of the covertype-like dataset at this scale.
    pub num_rows: u64,
    /// Attributes of the covertype-like dataset.
    pub num_attrs: u64,
    /// Headline result numbers, in emission order.
    pub headlines: Vec<Headline>,
    /// Worker-thread count the parallel stages resolved for this run
    /// (`ppdt_obs::threads(None)`: the `PPDT_THREADS` override, else
    /// hardware parallelism). `None` when parsing reports from schema
    /// v1 binaries, which did not record it.
    pub threads: Option<u64>,
    /// Phase timings, counters, and peak RSS captured at write time.
    pub metrics: ppdt_obs::MetricsSnapshot,
}

impl BenchReport {
    /// A report skeleton for `binary` under the given configuration.
    /// Dataset dimensions are derived from the scale without building
    /// the dataset.
    pub fn new(cfg: &HarnessConfig, binary: &str) -> Self {
        let cover = ppdt_data::gen::CovertypeConfig::at_scale(cfg.scale);
        BenchReport {
            schema_version: SCHEMA_VERSION,
            binary: binary.to_string(),
            seed: cfg.seed,
            scale: cfg.scale,
            trials: cfg.trials as u64,
            num_rows: cover.num_rows as u64,
            num_attrs: ppdt_data::gen::covertype_spec().len() as u64,
            headlines: Vec::new(),
            threads: Some(ppdt_obs::threads(None) as u64),
            metrics: ppdt_obs::snapshot(),
        }
    }

    /// Appends one headline number.
    pub fn push(&mut self, name: &str, value: f64) {
        self.headlines.push(Headline { name: name.to_string(), value });
    }

    /// The value of a headline by name, if present.
    pub fn headline(&self, name: &str) -> Option<f64> {
        self.headlines.iter().find(|h| h.name == name).map(|h| h.value)
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Refreshes the metrics snapshot and writes the report to
    /// `cfg.json`, if the flag was given. Returns whether a file was
    /// written.
    pub fn write_if_requested(mut self, cfg: &HarnessConfig) -> std::io::Result<bool> {
        let Some(path) = &cfg.json else {
            return Ok(false);
        };
        self.metrics = ppdt_obs::snapshot();
        std::fs::write(path, self.to_json())?;
        eprintln!("benchmark report -> {path}");
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_roundtrip_is_lossless() {
        let cfg = HarnessConfig { scale: 0.01, ..Default::default() };
        let mut r = BenchReport::new(&cfg, "unit_test");
        r.push("domain_risk", 0.034);
        r.push("paths_total", 1707.0);
        let back = BenchReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.headline("paths_total"), Some(1707.0));
        assert_eq!(back.headline("missing"), None);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn write_if_requested_respects_the_flag() {
        let cfg = HarnessConfig::default();
        assert!(cfg.json.is_none());
        let written = BenchReport::new(&cfg, "x").write_if_requested(&cfg).unwrap();
        assert!(!written);

        let path =
            std::env::temp_dir().join(format!("BENCH_ppdt_test_{}.json", std::process::id()));
        let cfg = HarnessConfig { json: Some(path.display().to_string()), ..Default::default() };
        let written = BenchReport::new(&cfg, "x").write_if_requested(&cfg).unwrap();
        assert!(written);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(BenchReport::from_json(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dims_follow_scale() {
        let r = BenchReport::new(&HarnessConfig { scale: 0.002, ..Default::default() }, "x");
        assert_eq!(r.num_rows, 1_162);
        assert_eq!(r.num_attrs, 10);
    }
}
