//! Experiment drivers: one function per paper artifact. Each prints a
//! table in the paper's layout and returns the numbers so tests (and
//! `EXPERIMENTS.md` tooling) can assert on the shape.

use ppdt_attack::{combine_cracks, fit_crack, ComboReport, FitMethod, HackerProfile};
use ppdt_data::gen::{census_like, covertype_like, figure1, wdbc_like, CovertypeConfig};
use ppdt_data::{AttrId, AttrStats, Dataset};
use ppdt_risk::domain::{scenario_kps, DomainScenario};
use ppdt_risk::{
    domain_risk_trial, is_crack, pattern_risk_trial, rho_for_attr, sorting_risk_trial_with,
    subspace_risk_trial_with, try_run_trials, PatternReport,
};
use ppdt_transform::{
    no_outcome_change, perturb_dataset, BreakpointStrategy, EncodeConfig, Encoder, FnFamily,
    PerturbKind,
};
use ppdt_tree::{SplitCriterion, ThresholdPolicy, TreeBuilder, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{header, pct, HarnessConfig};

/// The encode configuration used by the disclosure experiments
/// (Figure 9 reports polyline fitting over sqrt(log) piece functions).
fn fig_config(strategy: BreakpointStrategy, family: FnFamily) -> EncodeConfig {
    EncodeConfig { strategy, family, ..Default::default() }
}

fn expert_polyline(rho_frac: f64) -> DomainScenario {
    DomainScenario {
        profile: HackerProfile::Expert,
        method: FitMethod::Polyline,
        rho_frac,
        ignorant_range_uncertainty: 0.5,
    }
}

// ---------------------------------------------------------------- fig1

/// E1 — Figure 1: the worked example, end to end.
pub fn fig1(_cfg: &HarnessConfig) -> bool {
    header("Figure 1: worked example (age/salary)");
    let d = figure1();
    let d2 = ppdt_data::gen::figure1_transformed();
    println!("D  (age, salary, class):");
    for row in 0..d.num_rows() {
        println!(
            "  {:>4} {:>8} {}",
            d.value(row, AttrId(0)),
            d.value(row, AttrId(1)),
            d.schema().class_name(d.label(row))
        );
    }
    println!("D' (age' = 0.9*age + 10, salary' = 0.5*salary):");
    for row in 0..d2.num_rows() {
        println!(
            "  {:>5} {:>8} {}",
            d2.value(row, AttrId(0)),
            d2.value(row, AttrId(1)),
            d2.schema().class_name(d2.label(row))
        );
    }
    let builder = TreeBuilder::default();
    let t = builder.fit(&d);
    let t2 = builder.fit(&d2);
    println!("T' (mined on D'):\n{}", t2.render(Some(d.schema())));
    let s = t2.map_thresholds(|a, v| if a.index() == 0 { (v - 10.0) / 0.9 } else { v / 0.5 });
    println!("S = decode(T'):\n{}", s.render(Some(d.schema())));
    println!("T (mined on D):\n{}", t.render(Some(d.schema())));
    let equal = ppdt_tree::trees_equal_eps(&s, &t, 1e-9);
    println!("S == T (up to fp rounding): {equal}");
    equal
}

// ---------------------------------------------------------------- fig8

/// E2 — Figure 8: statistics of the 10 covertype attributes,
/// paper targets vs. the synthetic dataset's measured values.
pub fn fig8(cfg: &HarnessConfig) -> Vec<AttrStats> {
    header("Figure 8: statistics of attributes (paper target vs measured)");
    let d = cfg.covertype();
    let stats = AttrStats::compute_all(&d, 1.0, 5);
    let spec = ppdt_data::gen::covertype_spec();
    println!(
        "{:>5} | {:>7} {:>7} | {:>8} {:>8} | {:>6} {:>6} | {:>8} {:>8} | {:>7} {:>7}",
        "attr",
        "widthP",
        "widthM",
        "distP",
        "distM",
        "mpP",
        "mpM",
        "avglenP",
        "avglenM",
        "pctP",
        "pctM"
    );
    for (i, (s, sp)) in stats.iter().zip(&spec).enumerate() {
        let avg_target = if sp.num_mono_pieces == 0 {
            0.0
        } else {
            sp.pct_mono_values * sp.num_distinct as f64 / sp.num_mono_pieces as f64
        };
        println!(
            "{:>5} | {:>7} {:>7} | {:>8} {:>8} | {:>6} {:>6} | {:>8.0} {:>8.0} | {:>7} {:>7}",
            i + 1,
            sp.range_width,
            s.range_width,
            sp.num_distinct,
            s.num_distinct,
            sp.num_mono_pieces,
            s.num_mono_pieces,
            avg_target,
            s.avg_mono_piece_len,
            pct(sp.pct_mono_values),
            pct(s.pct_mono_values),
        );
    }
    stats
}

// ---------------------------------------------------------------- fig9

/// One attribute's four Figure 9 bars.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Attribute (0-based).
    pub attr: usize,
    /// Baseline: no breakpoints, expert hacker.
    pub none_expert: f64,
    /// ChooseBP, expert hacker.
    pub choosebp_expert: f64,
    /// ChooseMaxMP, expert hacker.
    pub choosemaxmp_expert: f64,
    /// ChooseMaxMP, knowledgeable hacker.
    pub choosemaxmp_knowledgeable: f64,
    /// ChooseMaxMP, ignorant hacker (the paper quotes < 5% in text).
    pub choosemaxmp_ignorant: f64,
}

/// E3 — Figure 9: domain disclosure risk per attribute under the four
/// configurations (plus the ignorant-hacker column quoted in the
/// text). Polyline fitting, sqrt(log) pieces, ρ = 2% of the range.
pub fn fig9(cfg: &HarnessConfig) -> Vec<Fig9Row> {
    header("Figure 9: domain disclosure risk (median over trials)");
    let d = cfg.covertype();
    let stats = AttrStats::compute_all(&d, 1.0, 5);
    println!(
        "{:>5} | {:>12} {:>12} {:>12} {:>14} {:>12}",
        "attr", "none/expert", "BP/expert", "MaxMP/expert", "MaxMP/knowl.", "MaxMP/ignor."
    );
    let mut rows = Vec::new();
    for (a, stat) in stats.iter().enumerate() {
        let attr = AttrId(a);
        // The paper gives ChooseBP the same breakpoint budget as
        // ChooseMaxMP (the number of monochromatic pieces), minimum 20.
        let w = stat.num_mono_pieces.max(20);
        let run = |strategy: BreakpointStrategy, profile: HackerProfile, salt: u64| -> f64 {
            let encode_config = fig_config(strategy, FnFamily::SqrtLog);
            let scenario = DomainScenario { profile, ..expert_polyline(0.02) };
            try_run_trials(cfg.trials, cfg.seed ^ salt ^ (a as u64) << 8, |rng| {
                domain_risk_trial(rng, &d, attr, &encode_config, &scenario)
            })
            .expect("domain risk trial")
            .median
        };
        let maxmp = BreakpointStrategy::ChooseMaxMP { w, min_piece_len: 5 };
        let row = Fig9Row {
            attr: a,
            none_expert: run(BreakpointStrategy::None, HackerProfile::Expert, 0x1),
            choosebp_expert: run(BreakpointStrategy::ChooseBP { w }, HackerProfile::Expert, 0x2),
            choosemaxmp_expert: run(maxmp, HackerProfile::Expert, 0x3),
            choosemaxmp_knowledgeable: run(maxmp, HackerProfile::Knowledgeable, 0x4),
            choosemaxmp_ignorant: run(maxmp, HackerProfile::Ignorant, 0x5),
        };
        println!(
            "{:>5} | {:>12} {:>12} {:>12} {:>14} {:>12}",
            a + 1,
            pct(row.none_expert),
            pct(row.choosebp_expert),
            pct(row.choosemaxmp_expert),
            pct(row.choosemaxmp_knowledgeable),
            pct(row.choosemaxmp_ignorant),
        );
        rows.push(row);
    }
    rows
}

// ------------------------------------------------------------ table_fit

/// E4 — the §6.2.2 table: crack % for each fitting method × transform
/// family on attribute 10, ChooseMaxMP, expert hacker.
pub fn table_fit(cfg: &HarnessConfig) -> Vec<(FitMethod, FnFamily, f64)> {
    header("Section 6.2.2 table: fitting method x transform family (attr 10, expert)");
    let d = cfg.covertype();
    let attr = AttrId(9);
    let families = [FnFamily::Polynomial, FnFamily::Log, FnFamily::SqrtLog];
    let methods = [FitMethod::LinearRegression, FitMethod::Spline, FitMethod::Polyline];
    println!("{:>18} | {:>12} {:>12} {:>12}", "", "polynomial", "log", "sqrt(log)");
    let mut out = Vec::new();
    for method in methods {
        let mut cells = Vec::new();
        for family in families {
            let encode_config =
                fig_config(BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }, family);
            let scenario = DomainScenario { method, ..expert_polyline(0.02) };
            let stat = try_run_trials(
                cfg.trials,
                cfg.seed ^ (method as u64 + 1) << 4 ^ (family as u64) << 9,
                |rng| domain_risk_trial(rng, &d, attr, &encode_config, &scenario),
            )
            .expect("domain risk trial");
            cells.push(stat.median);
            out.push((method, family, stat.median));
        }
        println!(
            "{:>18} | {:>12} {:>12} {:>12}",
            method.name(),
            pct(cells[0]),
            pct(cells[1]),
            pct(cells[2])
        );
    }
    out
}

// ---------------------------------------------------------------- fig10

/// E5 — Figure 10: the combination attack's Venn diagram on attribute
/// 10 with sqrt(log) pieces and an expert hacker, plus the three
/// aggregations discussed in the text.
pub fn fig10(cfg: &HarnessConfig) -> ComboReport {
    header("Figure 10: combination attack (attr 10, sqrt(log), expert)");
    let d = cfg.covertype();
    let attr = AttrId(9);
    let encode_config =
        fig_config(BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }, FnFamily::SqrtLog);
    let scenario = expert_polyline(0.02);

    // Aggregate the Venn regions over the trials (all trials share the
    // same item universe size, so averaging fractions is safe).
    let trials = cfg.trials;
    let mut agg: Option<ComboReport> = None;
    let mut venn_sums = [0.0f64; 8];
    let mut sums = (0.0, 0.0, 0.0);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF16_0000 ^ t as u64);
        let tr = Encoder::new(encode_config)
            .encode_attribute(&mut rng, &d, attr)
            .expect("encode attribute");
        let orig = &tr.orig_domain;
        let transformed: Vec<f64> =
            orig.iter().map(|&x| tr.encode(x).expect("in-domain value")).collect();
        let rho = rho_for_attr(&d, attr, scenario.rho_frac);
        let (lo, hi) = (orig[0], orig[orig.len() - 1]);
        let kps = scenario_kps(&mut rng, &scenario, &transformed, &tr, rho, lo, hi);
        // The hacker applies all three fitting methods to the SAME
        // knowledge points.
        let cracked: Vec<Vec<bool>> =
            [FitMethod::LinearRegression, FitMethod::Spline, FitMethod::Polyline]
                .iter()
                .map(|&m| {
                    let g = fit_crack(m, &kps);
                    orig.iter()
                        .zip(&transformed)
                        .map(|(&x, &y)| is_crack(g.guess(y), x, rho))
                        .collect()
                })
                .collect();
        let report = combine_cracks(&cracked);
        for (i, &v) in report.venn.iter().enumerate() {
            venn_sums[i] += v as f64 / report.num_items as f64;
        }
        sums.0 += report.union_risk;
        sums.1 += report.expected_risk;
        sums.2 += report.consensus_risk;
        agg = Some(report);
    }
    let mut report = agg.expect("at least one trial");
    let n = trials as f64;
    println!(
        "Venn regions (mean fraction of attacked values; R=regression, S=spline, P=polyline):"
    );
    let names = ["none", "R", "S", "RS", "P", "RP", "SP", "RSP"];
    for (mask, name) in names.iter().enumerate() {
        println!("  {:>5}: {}", name, pct(venn_sums[mask] / n));
    }
    report.union_risk = sums.0 / n;
    report.expected_risk = sums.1 / n;
    report.consensus_risk = sums.2 / n;
    println!("  union (naive sum):     {}", pct(report.union_risk));
    println!("  expected (k/3 weight): {}", pct(report.expected_risk));
    println!("  consensus (>=2 agree): {}", pct(report.consensus_risk));
    report
}

// ---------------------------------------------------------------- fig11

/// One Figure 11 row (plus the proportional-attack extension column).
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Number of discontinuities in the dynamic range.
    pub num_discontinuities: usize,
    /// Fraction of distinct values in monochromatic pieces.
    pub pct_mono_values: f64,
    /// Worst-case crack fraction under the paper's consecutive-map
    /// sorting attack.
    pub consecutive_crack: f64,
    /// Crack fraction under the stronger proportional-map attack (our
    /// extension; not in the paper).
    pub proportional_crack: f64,
}

/// E6 — Figure 11: worst-case sorting attack per attribute. The last
/// column is this repo's extension: a proportional rank map that
/// self-corrects for evenly spread discontinuities (see
/// `EXPERIMENTS.md` for the discussion).
pub fn fig11(cfg: &HarnessConfig) -> Vec<Fig11Row> {
    header("Figure 11: worst-case sorting attack (true min/max known)");
    let d = cfg.covertype();
    let stats = AttrStats::compute_all(&d, 1.0, 5);
    let encode_config =
        fig_config(BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }, FnFamily::SqrtLog);
    println!(
        "{:>5} | {:>10} {:>10} {:>14} {:>16}",
        "attr", "#discont", "%mono", "crack% (paper)", "crack% (prop.)"
    );
    let mut rows = Vec::new();
    for (a, stat) in stats.iter().enumerate() {
        let attr = AttrId(a);
        let run = |mapping: ppdt_attack::SortingMapping, salt: u64| {
            try_run_trials(cfg.trials, cfg.seed ^ salt ^ (a as u64) << 3, |rng| {
                sorting_risk_trial_with(rng, &d, attr, &encode_config, 0.02, 1.0, mapping)
            })
            .expect("sorting risk trial")
            .median
        };
        let row = Fig11Row {
            num_discontinuities: stat.num_discontinuities,
            pct_mono_values: stat.pct_mono_values,
            consecutive_crack: run(ppdt_attack::SortingMapping::Consecutive, 0xF11_0000),
            proportional_crack: run(ppdt_attack::SortingMapping::Proportional, 0xF11_8000),
        };
        println!(
            "{:>5} | {:>10} {:>10} {:>14} {:>16}",
            a + 1,
            row.num_discontinuities,
            pct(row.pct_mono_values),
            pct(row.consecutive_crack),
            pct(row.proportional_crack)
        );
        rows.push(row);
    }
    rows
}

// ---------------------------------------------------------------- fig12

/// E7 — Figure 12: subspace association disclosure risk for the
/// paper's selected subspaces (1-based attribute labels).
pub fn fig12(cfg: &HarnessConfig) -> Vec<(Vec<usize>, f64)> {
    header("Figure 12: subspace association disclosure risk (expert hacker)");
    let d = cfg.covertype();
    let subspaces: Vec<Vec<usize>> = vec![
        vec![4],
        vec![7],
        vec![10],
        vec![4, 7],
        vec![4, 10],
        vec![7, 10],
        vec![4, 7, 10],
        vec![2],
        vec![2, 10],
        vec![2, 6],
        vec![2, 6, 10],
    ];
    let encode_config =
        fig_config(BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }, FnFamily::SqrtLog);
    let scenario = expert_polyline(0.02);
    let mut out = Vec::new();
    for (i, labels) in subspaces.iter().enumerate() {
        let ids: Vec<AttrId> = labels.iter().map(|&l| AttrId(l - 1)).collect();
        let stat =
            try_run_trials(cfg.trials.min(25), cfg.seed ^ 0xF12_0000 ^ (i as u64) << 3, |rng| {
                // The hacker runs both curve fitting and worst-case sorting
                // per attribute (sorting dominates for attribute 2).
                subspace_risk_trial_with(rng, &d, &ids, &encode_config, &scenario, true, 1.0)
            })
            .expect("subspace risk trial");
        let label = labels.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
        println!("  {{{label}}}: {}", pct(stat.median));
        out.push((labels.clone(), stat.median));
    }
    out
}

// ------------------------------------------------------------ table_paths

/// E8 — the §6.4 table: pattern disclosure by path length against an
/// insider hacker (8 KPs) with a 5% radius.
pub fn table_paths(cfg: &HarnessConfig) -> PatternReport {
    header("Section 6.4: output privacy — paths of the mined tree");
    let d = cfg.covertype();
    let scenario = DomainScenario { profile: HackerProfile::Insider, ..expert_polyline(0.05) };
    let encode_config = EncodeConfig::default();
    let params = TreeParams { min_samples_leaf: 5, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6_4000);
    let report =
        pattern_risk_trial(&mut rng, &d, &encode_config, params, &scenario).expect("pattern trial");

    // The paper buckets lengths 1..6 and "> 6".
    let mut buckets = vec![(0usize, 0usize); 7];
    for &(len, paths, cracks) in &report.by_length {
        let idx = if len > 6 { 6 } else { len.saturating_sub(1) };
        buckets[idx].0 += paths;
        buckets[idx].1 += cracks;
    }
    println!("{:>12} | 1     2     3     4     5     6     >6", "path length");
    print!("{:>12} |", "# of paths");
    for &(p, _) in &buckets {
        print!(" {p:>5}");
    }
    print!("\n{:>12} |", "# of cracks");
    for &(_, c) in &buckets {
        print!(" {c:>5}");
    }
    println!(
        "\n  total {} paths, {} cracked ({})",
        report.total_paths,
        report.total_cracks,
        pct(report.risk())
    );
    report
}

// ------------------------------------------------------- no_outcome_change

/// Result row of the E9 sweep.
#[derive(Clone, Debug)]
pub struct OutcomeSweepRow {
    /// Dataset label.
    pub dataset: &'static str,
    /// Verification runs attempted.
    pub runs: usize,
    /// Runs where the decoded tree equalled the direct tree exactly.
    pub ok: usize,
}

/// E9a — the no-outcome-change sweep: every dataset × criterion ×
/// threshold policy × strategy × seed must verify exactly.
pub fn outcome_sweep(cfg: &HarnessConfig) -> Vec<OutcomeSweepRow> {
    header("Theorems 1-2: no-outcome-change sweep");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let covertype =
        covertype_like(&mut rng, &CovertypeConfig { num_rows: 4_000, ..Default::default() });
    let census = census_like(&mut rng, 2_000);
    let wdbc = wdbc_like(&mut rng, 569);
    let datasets: Vec<(&'static str, &Dataset)> =
        vec![("covertype-like", &covertype), ("census-like", &census), ("wdbc-like", &wdbc)];

    let strategies = [
        BreakpointStrategy::None,
        BreakpointStrategy::ChooseBP { w: 20 },
        BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 },
    ];
    let mut rows = Vec::new();
    for (name, d) in datasets {
        let mut runs = 0;
        let mut ok = 0;
        for criterion in [SplitCriterion::Gini, SplitCriterion::Entropy] {
            for policy in [ThresholdPolicy::DataValue, ThresholdPolicy::Midpoint] {
                for strategy in strategies {
                    for s in 0..2u64 {
                        let mut rng = StdRng::seed_from_u64(cfg.seed ^ s.wrapping_mul(0x9E37));
                        let encode_config = EncodeConfig { strategy, ..Default::default() };
                        let params = TreeParams {
                            criterion,
                            threshold_policy: policy,
                            min_samples_leaf: 3,
                            ..Default::default()
                        };
                        let report = no_outcome_change(&mut rng, d, &encode_config, params)
                            .expect("verification run");
                        runs += 1;
                        if report.all_ok() {
                            ok += 1;
                        } else if let Some(diff) = &report.first_diff {
                            println!(
                                "  MISMATCH [{name} {criterion:?} {policy:?} {strategy:?}]: {diff}"
                            );
                        }
                    }
                }
            }
        }
        println!("  {name}: {ok}/{runs} exact");
        rows.push(OutcomeSweepRow { dataset: name, runs, ok });
    }
    rows
}

/// E9b — the perturbation contrast (Section 1/2): additive noise
/// leaves a fraction of discrete values unchanged *and* changes the
/// mined tree; the piecewise transforms do neither.
pub fn perturbation_contrast(cfg: &HarnessConfig) -> Vec<(String, f64, bool, f64)> {
    header("Perturbation baseline vs piecewise transforms (census-like)");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBA5E);
    let d = census_like(&mut rng, 3_000);
    let builder = TreeBuilder::new(TreeParams { min_samples_leaf: 3, ..Default::default() });
    let t = builder.fit(&d);

    println!(
        "{:>26} | {:>11} {:>13} {:>16}",
        "method", "% unchanged", "tree changed", "train-acc delta"
    );
    let mut rows = Vec::new();
    for (kind, level) in [
        (PerturbKind::Uniform, 0.005),
        (PerturbKind::Uniform, 0.05),
        (PerturbKind::Gaussian, 0.05),
        (PerturbKind::Gaussian, 0.25),
    ] {
        let p = perturb_dataset(&mut rng, &d, kind, level, 1.0);
        let unchanged =
            p.unchanged_fraction.iter().sum::<f64>() / p.unchanged_fraction.len() as f64;
        let tp = builder.fit(&p.dataset);
        let changed = !ppdt_tree::trees_equal_eps(&t, &tp, 1e-9);
        // Accuracy on the ORIGINAL data of the tree mined on the
        // perturbed data: the custodian's outcome loss.
        let acc_delta = t.accuracy(&d) - tp.accuracy(&d);
        let label = format!("{kind:?} noise {:.1}%", level * 100.0);
        println!("{:>26} | {:>11} {:>13} {:>16.4}", label, pct(unchanged), changed, acc_delta);
        rows.push((label, unchanged, changed, acc_delta));
    }

    // The piecewise transform row.
    let (key, d2) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    let t2 = builder.fit(&d2);
    let s = key.decode_tree(&t2, ThresholdPolicy::DataValue, &d).expect("decode tree");
    let changed = !ppdt_tree::trees_equal(&s, &t);
    let unchanged_vals = d
        .schema()
        .attrs()
        .map(|a| {
            let col = d.column(a);
            let col2 = d2.column(a);
            col.iter().zip(col2).filter(|(x, y)| x == y).count() as f64 / col.len() as f64
        })
        .sum::<f64>()
        / d.num_attrs() as f64;
    println!(
        "{:>26} | {:>11} {:>13} {:>16.4}",
        "piecewise (this paper)",
        pct(unchanged_vals),
        changed,
        0.0
    );
    rows.push(("piecewise".into(), unchanged_vals, changed, 0.0));
    rows
}

// -------------------------------------------------------------- ablation

/// X1 — layout ablation: i.i.d.-proportional vs multiplicative-cascade
/// piece-interval layouts, measured as domain disclosure risk under
/// the expert/polyline attack (the design decision of `DESIGN.md`
/// §4.4). Returns `(attr, iid_risk, cascade_risk)` rows.
pub fn ablation_layout(cfg: &HarnessConfig) -> Vec<(usize, f64, f64)> {
    header("Ablation: i.i.d. vs cascade interval layout (expert, polyline)");
    let d = cfg.covertype();
    let scenario = expert_polyline(0.02);
    println!("{:>5} | {:>12} {:>12}", "attr", "iid", "cascade");
    let mut rows = Vec::new();
    // The effect grows with piece count; show a representative spread.
    for a in [0usize, 3, 5, 9] {
        let attr = AttrId(a);
        let run = |layout: ppdt_transform::LayoutKind, salt: u64| {
            let encode_config =
                EncodeConfig { layout, family: FnFamily::SqrtLog, ..Default::default() };
            try_run_trials(cfg.trials, cfg.seed ^ salt ^ (a as u64) << 5, |rng| {
                domain_risk_trial(rng, &d, attr, &encode_config, &scenario)
            })
            .expect("domain risk trial")
            .median
        };
        let iid = run(ppdt_transform::LayoutKind::IidProportional, 0xAB1);
        let cascade = run(ppdt_transform::LayoutKind::Cascade, 0xAB2);
        println!("{:>5} | {:>12} {:>12}", a + 1, pct(iid), pct(cascade));
        rows.push((a, iid, cascade));
    }

    // Second ablation: the gap budget between piece intervals.
    header("Ablation: gap fraction between piece intervals (attr 10)");
    println!("{:>6} | {:>12}", "gaps", "risk");
    let attr = AttrId(9);
    for gap_fraction in [0.01, 0.15, 0.4] {
        let encode_config =
            EncodeConfig { gap_fraction, family: FnFamily::SqrtLog, ..Default::default() };
        let risk =
            try_run_trials(cfg.trials, cfg.seed ^ 0xAB3 ^ (gap_fraction * 100.0) as u64, |rng| {
                domain_risk_trial(rng, &d, attr, &encode_config, &scenario)
            })
            .expect("domain risk trial")
            .median;
        println!("{:>5.0}% | {:>12}", 100.0 * gap_fraction, pct(risk));
    }
    rows
}

// --------------------------------------------------------- quantile attack

/// X3 — quantile-matching attack (the §3.3 "rival company sample"
/// prior): crack % per attribute for a hacker holding a clean 10%
/// sample of the original marginal, with and without breakpoints.
pub fn quantile_attack(cfg: &HarnessConfig) -> Vec<(usize, f64, f64)> {
    header("Extension: quantile-matching attack (10% similar-data sample)");
    let d = cfg.covertype();
    println!("{:>5} | {:>14} {:>14}", "attr", "no breakpoints", "ChooseMaxMP");
    let mut rows = Vec::new();
    for a in 0..d.num_attrs() {
        let attr = AttrId(a);
        let run = |strategy: BreakpointStrategy, salt: u64| {
            let encode_config = fig_config(strategy, FnFamily::SqrtLog);
            try_run_trials(cfg.trials.min(25), cfg.seed ^ salt ^ (a as u64) << 6, |rng| {
                ppdt_risk::quantile_risk_trial(rng, &d, attr, &encode_config, 0.02, 0.1, 0.0)
            })
            .expect("quantile risk trial")
            .median
        };
        let baseline = run(BreakpointStrategy::None, 0xA6);
        let maxmp = run(BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }, 0xA7);
        println!("{:>5} | {:>14} {:>14}", a + 1, pct(baseline), pct(maxmp));
        rows.push((a, baseline, maxmp));
    }
    rows
}

// --------------------------------------------------------- spectral attack

/// X5 — the spectral reconstruction attack of the paper's reference
/// \[7\], run against the perturbation baseline on correlated data:
/// additive noise can be filtered through the signal's principal
/// subspace, so the baseline's input privacy is weaker than its noise
/// level suggests. The piecewise framework has no additive noise to
/// filter. Returns `(noise_sd, crack_before, crack_after)` rows.
pub fn spectral_attack(cfg: &HarnessConfig) -> Vec<(f64, f64, f64)> {
    use ppdt_attack::spectral_reconstruct;
    header("Extension: spectral attack on the perturbation baseline (correlated data)");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5BEC);
    // Strongly correlated attributes: one latent factor.
    let d = ppdt_data::gen::factor_model(&mut rng, 6_000, &[1.0, 0.8, -1.2, 0.5, 0.9], 40.0, 2.0);
    let rho = 0.02; // crack radius, fraction of each range

    println!(
        "{:>10} | {:>16} {:>16} {:>12}",
        "noise sd", "cracked (noisy)", "cracked (spectral)", "components"
    );
    let mut rows = Vec::new();
    for noise_frac in [0.05, 0.1, 0.2] {
        // Perturb with per-attribute Gaussian noise.
        let p = perturb_dataset(&mut rng, &d, PerturbKind::Gaussian, noise_frac, 1.0);
        let perturbed: Vec<Vec<f64>> =
            (0..d.num_attrs()).map(|a| p.dataset.column(AttrId(a)).to_vec()).collect();
        let noise_vars: Vec<f64> = (0..d.num_attrs())
            .map(|a| {
                let (lo, hi) = d.min_max(AttrId(a)).expect("nonempty");
                let sd = noise_frac * (hi - lo);
                sd * sd
            })
            .collect();
        let rec = spectral_reconstruct(&perturbed, &noise_vars);

        let crack_fraction = |cols: &[Vec<f64>]| -> f64 {
            let mut cracks = 0usize;
            let mut total = 0usize;
            for (a, col) in cols.iter().enumerate() {
                let (lo, hi) = d.min_max(AttrId(a)).expect("nonempty");
                let radius = rho * (hi - lo);
                for (x, y) in d.column(AttrId(a)).iter().zip(col) {
                    if (x - y).abs() <= radius {
                        cracks += 1;
                    }
                    total += 1;
                }
            }
            cracks as f64 / total as f64
        };
        let before = crack_fraction(&perturbed);
        let after = crack_fraction(&rec.columns);
        println!(
            "{:>9.0}% | {:>16} {:>16} {:>12}",
            100.0 * noise_frac,
            pct(before),
            pct(after),
            rec.components_kept
        );
        rows.push((noise_frac, before, after));
    }
    println!("  (the piecewise framework never adds noise, so there is nothing to filter)");
    rows
}

// -------------------------------------------------------------- nb probe

/// X6 — the positive counterpart to the SVM probe: a quantile-binned
/// naive Bayes consumes only rank statistics, so its outcome *is*
/// preserved by the piecewise transforms — evidence that Theorem 2's
/// real boundary is "rank-statistic learners", not "decision trees".
/// Returns `(dataset, models_identical, prediction_agreement)` rows.
pub fn nb_outcome(cfg: &HarnessConfig) -> Vec<(&'static str, bool, f64)> {
    use ppdt_bayes::{NbParams, QuantileBinnedNb};
    header("Extension: quantile-binned naive Bayes outcome IS preserved");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBAE5);
    let census = census_like(&mut rng, 3_000);
    let wdbc = ppdt_data::gen::wdbc_like(&mut rng, 569);
    let covertype =
        covertype_like(&mut rng, &CovertypeConfig { num_rows: 4_000, ..Default::default() });
    let datasets: Vec<(&'static str, Dataset)> =
        vec![("census-like", census), ("wdbc-like", wdbc), ("covertype-like", covertype)];

    println!(
        "{:>14} | {:>16} {:>11} {:>9}",
        "dataset", "models identical", "pred agree", "accuracy"
    );
    let mut rows = Vec::new();
    for (name, d) in datasets {
        let (_, d2) = Encoder::new(EncodeConfig::default())
            .encode(&mut rng, &d)
            .expect("encode")
            .into_parts();
        let params = NbParams::default();
        let m1 = QuantileBinnedNb::fit(&d, &params);
        let m2 = QuantileBinnedNb::fit(&d2, &params);
        let identical = m1.log_prior == m2.log_prior && m1.log_likelihood == m2.log_likelihood;
        let mut agree = 0usize;
        let mut x = vec![0.0; d.num_attrs()];
        let mut x2 = vec![0.0; d.num_attrs()];
        for row in 0..d.num_rows() {
            for a in d.schema().attrs() {
                x[a.index()] = d.value(row, a);
                x2[a.index()] = d2.value(row, a);
            }
            if m1.predict(&x) == m2.predict(&x2) {
                agree += 1;
            }
        }
        let agreement = agree as f64 / d.num_rows() as f64;
        println!(
            "{:>14} | {:>16} {:>11} {:>9}",
            name,
            identical,
            pct(agreement),
            pct(m1.accuracy(&d))
        );
        rows.push((name, identical, agreement));
    }
    rows
}

// ------------------------------------------------------------- svm probe

/// Result of the SVM future-work probe for one dataset.
#[derive(Clone, Debug)]
pub struct SvmProbeRow {
    /// Dataset label.
    pub dataset: &'static str,
    /// Tree prediction agreement between the decoded tree and the
    /// direct tree (always 1.0 — the guarantee).
    pub tree_agreement: f64,
    /// SVM prediction agreement: `svm(D')` on encoded tuples vs
    /// `svm(D)` on the originals, same training seed.
    pub svm_agreement: f64,
    /// Training accuracy of the SVM trained on `D`.
    pub svm_acc_original: f64,
    /// Training accuracy (w.r.t. the true labels) of the SVM trained
    /// on `D'`.
    pub svm_acc_transformed: f64,
}

/// X4 — the Section 7 probe: the tree-preserving transformations do
/// **not** preserve a linear SVM's outcome. For each dataset we train
/// the same-seed SVM on `D` and on `D'` and measure prediction
/// agreement and accuracy; trees sit at 100% agreement by Theorem 2.
pub fn svm_outcome(cfg: &HarnessConfig) -> Vec<SvmProbeRow> {
    use ppdt_svm::{train_multiclass, SvmParams};
    header("Section 7 probe: SVM outcome is NOT preserved (motivating the future work)");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x57_u64);
    let census = census_like(&mut rng, 3_000);
    let wdbc = ppdt_data::gen::wdbc_like(&mut rng, 569);
    let datasets: Vec<(&'static str, Dataset)> = vec![("census-like", census), ("wdbc-like", wdbc)];

    println!(
        "{:>12} | {:>10} {:>9} | {:>9} {:>9}",
        "dataset", "tree agree", "svm agree", "svm acc D", "svm acc D'"
    );
    let mut rows = Vec::new();
    for (name, d) in datasets {
        let (key, d2) = Encoder::new(EncodeConfig::default())
            .encode(&mut rng, &d)
            .expect("encode")
            .into_parts();

        // Trees: exact by Theorem 2.
        let builder = TreeBuilder::new(TreeParams { min_samples_leaf: 3, ..Default::default() });
        let t = builder.fit(&d);
        let s = key
            .decode_tree(&builder.fit(&d2), ThresholdPolicy::DataValue, &d)
            .expect("decode tree");
        assert!(ppdt_tree::trees_equal(&s, &t));

        // SVMs: train with identical seeds on D and D'.
        let params = SvmParams::default();
        let svm_d = train_multiclass(&mut StdRng::seed_from_u64(cfg.seed), &d, &params);
        let svm_d2 = train_multiclass(&mut StdRng::seed_from_u64(cfg.seed), &d2, &params);
        let mut agree = 0usize;
        let mut x = vec![0.0; d.num_attrs()];
        let mut x2 = vec![0.0; d.num_attrs()];
        for row in 0..d.num_rows() {
            for a in d.schema().attrs() {
                x[a.index()] = d.value(row, a);
                x2[a.index()] = d2.value(row, a);
            }
            if svm_d.predict(&x) == svm_d2.predict(&x2) {
                agree += 1;
            }
        }
        let row = SvmProbeRow {
            dataset: name,
            tree_agreement: 1.0,
            svm_agreement: agree as f64 / d.num_rows() as f64,
            svm_acc_original: svm_d.accuracy(&d),
            svm_acc_transformed: svm_d2.accuracy(&d2),
        };
        println!(
            "{:>12} | {:>10} {:>9} | {:>9} {:>9}",
            name,
            pct(row.tree_agreement),
            pct(row.svm_agreement),
            pct(row.svm_acc_original),
            pct(row.svm_acc_transformed),
        );
        rows.push(row);
    }
    println!(
        "  (tree agreement is exact by Theorem 2; the SVM's separating planes mix\n   \
         attributes, so per-attribute monotone maps change its outcome — the gap\n   \
         the paper's forthcoming SVM treatment has to close)"
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig { seed: 7, scale: 0.004, trials: 5, json: None }
    }

    #[test]
    fn fig1_verifies() {
        assert!(fig1(&tiny()));
    }

    #[test]
    fn outcome_sweep_all_exact() {
        for row in outcome_sweep(&tiny()) {
            assert_eq!(row.ok, row.runs, "{}", row.dataset);
        }
    }

    #[test]
    fn perturbation_contrast_shape() {
        let rows = perturbation_contrast(&tiny());
        let last = rows.last().unwrap();
        // The piecewise row: no unchanged values, no tree change.
        assert_eq!(last.1, 0.0);
        assert!(!last.2);
        // The heavy-noise row changes the tree.
        assert!(rows[3].2);
    }
}
