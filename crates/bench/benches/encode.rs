//! Encoder throughput: per-attribute transform construction and
//! whole-dataset encoding under each breakpoint strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppdt_bench::HarnessConfig;
use ppdt_data::AttrId;
use ppdt_transform::{BreakpointStrategy, EncodeConfig, Encoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encode(c: &mut Criterion) {
    let cfg = HarnessConfig { scale: 0.01, ..Default::default() };
    let d = cfg.covertype();

    let mut group = c.benchmark_group("encode_attribute");
    group.sample_size(20);
    for (name, strategy) in [
        ("none", BreakpointStrategy::None),
        ("choosebp", BreakpointStrategy::ChooseBP { w: 20 }),
        ("choosemaxmp", BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }),
    ] {
        let config = EncodeConfig { strategy, ..Default::default() };
        group.bench_with_input(BenchmarkId::new(name, "attr10"), &config, |b, config| {
            let mut rng = StdRng::seed_from_u64(2);
            let enc = Encoder::new(*config);
            b.iter(|| enc.encode_attribute(&mut rng, &d, AttrId(9)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("encode_dataset");
    group.sample_size(10);
    group.throughput(Throughput::Elements((d.num_rows() * d.num_attrs()) as u64));
    group.bench_function("default_config", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = Encoder::new(EncodeConfig::default());
        b.iter(|| enc.encode(&mut rng, &d))
    });
    group.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
