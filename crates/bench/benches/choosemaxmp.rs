//! E10 — ChooseMaxMP runtime (the paper reports 1–2 s per attribute
//! on the full 581,012-row benchmark in MATLAB; this measures the
//! Rust implementation per attribute at 1/50 scale, dominated by the
//! sort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdt_bench::HarnessConfig;
use ppdt_data::{AttrId, MonoAnalysis};
use ppdt_transform::{plan_pieces, BreakpointStrategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_choosemaxmp(c: &mut Criterion) {
    let cfg = HarnessConfig { scale: 0.02, ..Default::default() };
    let d = cfg.covertype();
    let mut group = c.benchmark_group("choosemaxmp");
    group.sample_size(20);
    for a in [0usize, 5, 9] {
        let attr = AttrId(a);
        group.bench_with_input(BenchmarkId::new("plan_pieces", a + 1), &attr, |b, &attr| {
            let sc = d.sorted_column(attr);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                plan_pieces(
                    &mut rng,
                    &sc,
                    BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sort_and_analyze", a + 1), &attr, |b, &attr| {
            b.iter(|| {
                let sc = d.sorted_column(attr);
                MonoAnalysis::analyze(&sc, 5)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_choosemaxmp);
criterion_main!(benches);
