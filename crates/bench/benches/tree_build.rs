//! Decision-tree builder throughput (original vs transformed data —
//! the two must cost the same, which is itself a property worth
//! watching) and the custodian's decode step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppdt_bench::HarnessConfig;
use ppdt_transform::{EncodeConfig, Encoder};
use ppdt_tree::{ThresholdPolicy, TreeBuilder, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tree(c: &mut Criterion) {
    let cfg = HarnessConfig { scale: 0.005, ..Default::default() };
    let d = cfg.covertype();
    let mut rng = StdRng::seed_from_u64(4);
    let (key, d2) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    let params = TreeParams { min_samples_leaf: 5, ..Default::default() };
    let builder = TreeBuilder::new(params);

    let mut group = c.benchmark_group("tree");
    group.sample_size(10);
    group.throughput(Throughput::Elements(d.num_rows() as u64));
    group.bench_function("fit_original", |b| b.iter(|| builder.fit(&d)));
    group.bench_function("fit_presorted", |b| b.iter(|| builder.fit_presorted(&d)));
    group.bench_function("fit_transformed", |b| b.iter(|| builder.fit(&d2)));

    let mined = builder.fit(&d2);
    group.bench_function("decode_tree", |b| {
        b.iter(|| key.decode_tree(&mined, ThresholdPolicy::DataValue, &d))
    });
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
