//! Attack-side throughput: curve fitting, guessing, and the sorting
//! attack over a realistic transformed domain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppdt_attack::{fit_crack, generate_kps, sorting_attack, FitMethod};
use ppdt_bench::HarnessConfig;
use ppdt_data::AttrId;
use ppdt_transform::{EncodeConfig, Encoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_attacks(c: &mut Criterion) {
    let cfg = HarnessConfig { scale: 0.02, ..Default::default() };
    let d = cfg.covertype();
    let mut rng = StdRng::seed_from_u64(5);
    let tr = Encoder::new(EncodeConfig::default())
        .encode_attribute(&mut rng, &d, AttrId(9))
        .expect("encode");
    let orig = tr.orig_domain.clone();
    let transformed: Vec<f64> =
        orig.iter().map(|&x| tr.encode(x).expect("in-domain value")).collect();
    let kps = generate_kps(
        &mut rng,
        &transformed,
        |y| tr.decode_snapped(y).unwrap_or(f64::NAN),
        143.0,
        8,
        0,
    );

    let mut group = c.benchmark_group("fit_and_guess");
    group.throughput(Throughput::Elements(transformed.len() as u64));
    for method in FitMethod::ALL {
        group.bench_with_input(BenchmarkId::new("fit", method.name()), &method, |b, &m| {
            b.iter(|| fit_crack(m, &kps))
        });
        let g = fit_crack(method, &kps);
        group.bench_with_input(BenchmarkId::new("guess_all", method.name()), &method, |b, _| {
            b.iter(|| transformed.iter().map(|&y| g.guess(y)).sum::<f64>())
        });
    }
    group.bench_function("sorting_attack_build", |b| {
        b.iter(|| sorting_attack(&transformed, orig[0], orig[orig.len() - 1], 1.0))
    });
    let atk = sorting_attack(&transformed, orig[0], orig[orig.len() - 1], 1.0);
    group.bench_function("sorting_attack_guess_all", |b| {
        b.iter(|| transformed.iter().map(|&y| atk.guess(y)).sum::<f64>())
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
