//! Golden-schema test: emit a real `BENCH_ppdt.json` through the
//! harness (instrumentation on, a genuine encode/mine/decode pass)
//! and round-trip it through serde, asserting the stable field set
//! documented in `BENCHMARKS.md`.

use ppdt_bench::report::{BenchReport, SCHEMA_VERSION};
use ppdt_bench::HarnessConfig;

/// Every `snapshot()` counter name, in emission order — the contract
/// `BENCHMARKS.md` documents and downstream tooling greps for.
const GOLDEN_COUNTERS: [&str; 29] = [
    "rows_encoded",
    "pieces_drawn",
    "boundaries_scanned",
    "trials_run",
    "nodes_decoded",
    "draw_retries",
    "verify_retries",
    "audit_violations",
    "split_scan_rows",
    "mining_threads",
    "pool_reuse_hits",
    "http_requests",
    "http_rejected",
    "http_errors",
    "http_in_flight_peak",
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_evictions",
    "tree_cache_hits",
    "http_keepalive_reuses",
    "http_pipelined_requests",
    "streamed_chunks",
    "peer_sync_rounds",
    "peer_keys_fetched",
    "peer_fetch_failures",
    "peer_unreachable",
    "batched_values",
    "piece_lookup_direct",
    "piece_lookup_bsearch",
];

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ppdt_golden_{name}_{}", std::process::id()))
}

#[test]
fn emitted_report_round_trips_with_golden_schema() {
    use rand::SeedableRng;
    let path = tmp("BENCH_ppdt.json");
    let cfg = HarnessConfig {
        seed: 7,
        scale: 0.002,
        trials: 3,
        json: Some(path.to_str().unwrap().to_string()),
    };
    ppdt_obs::reset();
    ppdt_obs::set_enabled(true);

    // A genuine encode -> mine -> decode pass so phases and counters
    // are populated by the pipeline itself, not by the test.
    let d = cfg.covertype();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let (key, d_prime) = ppdt_transform::Encoder::new(ppdt_transform::EncodeConfig::default())
        .encode(&mut rng, &d)
        .expect("encode")
        .into_parts();
    let t_prime = ppdt_tree::TreeBuilder::default().fit(&d_prime);
    let s = key.decode_tree(&t_prime, ppdt_tree::ThresholdPolicy::DataValue, &d).expect("decode");

    let mut report = BenchReport::new(&cfg, "golden_test");
    report.push("decoded_leaves", s.num_leaves() as f64);
    assert!(report.write_if_requested(&cfg).unwrap());

    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = BenchReport::from_json(&text).unwrap();

    assert_eq!(parsed.schema_version, SCHEMA_VERSION);
    assert_eq!(parsed.binary, "golden_test");
    assert_eq!(parsed.seed, 7);
    assert_eq!(parsed.scale, 0.002);
    assert_eq!(parsed.num_rows, d.num_rows() as u64);
    assert_eq!(parsed.num_attrs, d.num_attrs() as u64);
    assert_eq!(parsed.headline("decoded_leaves"), Some(s.num_leaves() as f64));

    // Counter names and order are part of the schema contract.
    let names: Vec<&str> = parsed.metrics.counters.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, GOLDEN_COUNTERS);
    assert!(parsed.metrics.enabled);

    // The pipeline pass above must have populated the real metrics.
    let counter = |n: &str| parsed.metrics.counters.iter().find(|c| c.name == n).unwrap().value;
    assert_eq!(counter("rows_encoded"), d.num_rows() as u64);
    assert!(counter("pieces_drawn") > 0);
    assert!(counter("nodes_decoded") > 0);
    assert!(counter("split_scan_rows") > 0, "fit ran with metrics on");
    assert!(counter("mining_threads") >= 1);
    assert!(parsed.threads.unwrap_or(0) >= 1, "v2 reports record the thread count");
    let phases: Vec<&str> = parsed.metrics.phases.iter().map(|p| p.name.as_str()).collect();
    for want in ["encode", "mine", "decode"] {
        assert!(phases.contains(&want), "missing phase {want:?} in {phases:?}");
    }
    assert!(parsed.metrics.peak_rss_bytes.unwrap_or(0) > 0);

    // Round-trip stability: serialize the parsed report again and the
    // JSON text must be unchanged (field order included).
    assert_eq!(parsed.to_json(), text);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn serve_api_pins_the_bench_report_schema_version() {
    // `GET /v1/version` advertises which bench-report schema the
    // daemon's tooling understands. That advertisement must track the
    // actual emitter, or clients negotiating on it read stale reports.
    assert_eq!(ppdt_serve::BENCH_REPORT_SCHEMA_VERSION, SCHEMA_VERSION);
}

#[test]
fn schema_v1_reports_without_threads_still_parse() {
    // Schema v1 reports predate the `threads` field. Reconstruct one
    // by stripping that line from a freshly emitted report; it must
    // still parse, with `threads` reading back as `None`.
    let cfg = HarnessConfig { seed: 1, scale: 0.002, trials: 1, json: None };
    let report = BenchReport::new(&cfg, "v1_compat");
    let v2_text = report.to_json();
    assert!(v2_text.contains("\"threads\""), "v2 reports carry the field");

    let v1_text: String =
        v2_text.lines().filter(|l| !l.contains("\"threads\"")).collect::<Vec<_>>().join("\n");
    let parsed = BenchReport::from_json(&v1_text).expect("v1-era report parses");
    assert_eq!(parsed.threads, None, "missing field reads back as None");
    assert_eq!(parsed.binary, "v1_compat");
    assert_eq!(parsed.seed, report.seed);
}
