//! Per-request records and their CSV form.
//!
//! The open-loop runner produces one record per scheduled request —
//! the raw material every downstream number (percentiles, error
//! curves, the knee) is computed from, and the artifact
//! `scripts/bench_ingest.py` re-derives exact percentiles from as a
//! cross-check on the histogram summaries. The CSV schema is part of
//! the tooling contract:
//!
//! ```text
//! seq,endpoint,sched_us,wait_us,latency_us,status,bytes,attempts,retry_wait_us
//! ```
//!
//! `sched_us` is the tick's place in the offered schedule (relative
//! to run start); `wait_us` is how late the generator actually sent
//! it (schedule slip — the open-loop evidence closed-loop timing
//! destroys); `latency_us` covers send-to-response only; `status` 0
//! means the request never got an HTTP answer (transport error).

use std::io::{BufRead as _, BufWriter, Write as _};
use std::path::Path;

use ppdt_error::PpdtError;

/// CSV header line (without trailing newline).
pub const CSV_HEADER: &str =
    "seq,endpoint,sched_us,wait_us,latency_us,status,bytes,attempts,retry_wait_us";

/// One scheduled request's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// Tick index in the offered schedule (0-based).
    pub seq: u64,
    /// Endpoint name ([`crate::BenchEndpoint::name`]).
    pub endpoint: &'static str,
    /// Scheduled send time, microseconds since run start.
    pub sched_us: u64,
    /// Actual send minus scheduled send (schedule slip), µs.
    pub wait_us: u64,
    /// Send-to-response latency, µs (wall clock of the exchange;
    /// subtract `retry_wait_us` for pure service+transport time).
    pub latency_us: u64,
    /// Final HTTP status; 0 when no HTTP answer arrived at all.
    pub status: u16,
    /// Response body bytes.
    pub bytes: u64,
    /// Exchanges performed (1 = no retries; always 1 on keep-alive).
    pub attempts: u32,
    /// Client-side sleep between attempts, µs (0 without retries).
    pub retry_wait_us: u64,
}

impl RequestRecord {
    /// `true` when the final status was a 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    fn to_csv_line(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{}",
            self.seq,
            self.endpoint,
            self.sched_us,
            self.wait_us,
            self.latency_us,
            self.status,
            self.bytes,
            self.attempts,
            self.retry_wait_us
        )
    }
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> PpdtError {
    PpdtError::Io { path: Some(path.display().to_string()), detail: e.to_string() }
}

/// Writes records as CSV (header + one line per record).
pub fn write_csv(path: &Path, records: &[RequestRecord]) -> Result<(), PpdtError> {
    let file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    let mut w = BufWriter::new(file);
    let mut emit = |line: &str| writeln!(w, "{line}").map_err(|e| io_err(path, e));
    emit(CSV_HEADER)?;
    for r in records {
        emit(&r.to_csv_line())?;
    }
    w.flush().map_err(|e| io_err(path, e))
}

/// Reads a CSV written by [`write_csv`] back into records. The
/// endpoint column is interned onto the static names so records stay
/// allocation-light; an unknown endpoint name is an error.
pub fn read_csv(path: &Path) -> Result<Vec<RequestRecord>, PpdtError> {
    let file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    let mut lines = std::io::BufReader::new(file).lines();
    let header =
        lines.next().ok_or_else(|| io_err(path, "empty file"))?.map_err(|e| io_err(path, e))?;
    if header.trim() != CSV_HEADER {
        return Err(io_err(path, format!("unexpected header {header:?}")));
    }
    let mut out = Vec::new();
    for (n, line) in lines.enumerate() {
        let line = line.map_err(|e| io_err(path, e))?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 9 {
            return Err(io_err(path, format!("line {}: expected 9 columns", n + 2)));
        }
        let field = |i: usize| -> Result<u64, PpdtError> {
            cols[i]
                .trim()
                .parse()
                .map_err(|_| io_err(path, format!("line {}: bad number {:?}", n + 2, cols[i])))
        };
        let endpoint = match cols[1].trim() {
            "encode" => "encode",
            "classify" => "classify",
            "list_keys" => "list_keys",
            other => {
                return Err(io_err(path, format!("line {}: unknown endpoint {other:?}", n + 2)));
            }
        };
        out.push(RequestRecord {
            seq: field(0)?,
            endpoint,
            sched_us: field(2)?,
            wait_us: field(3)?,
            latency_us: field(4)?,
            status: field(5)? as u16,
            bytes: field(6)?,
            attempts: field(7)? as u32,
            retry_wait_us: field(8)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips() {
        let records = vec![
            RequestRecord {
                seq: 0,
                endpoint: "encode",
                sched_us: 0,
                wait_us: 12,
                latency_us: 843,
                status: 200,
                bytes: 4096,
                attempts: 1,
                retry_wait_us: 0,
            },
            RequestRecord {
                seq: 1,
                endpoint: "list_keys",
                sched_us: 20_000,
                wait_us: 0,
                latency_us: 150,
                status: 503,
                bytes: 42,
                attempts: 2,
                retry_wait_us: 1_000_000,
            },
            RequestRecord {
                seq: 2,
                endpoint: "classify",
                sched_us: 40_000,
                wait_us: 9_999,
                latency_us: 0,
                status: 0,
                bytes: 0,
                attempts: 1,
                retry_wait_us: 0,
            },
        ];
        let path =
            std::env::temp_dir().join(format!("ppdt_bencher_records_{}.csv", std::process::id()));
        write_csv(&path, &records).unwrap();
        let back = read_csv(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, records);
        assert!(back[0].is_ok());
        assert!(!back[1].is_ok());
        assert!(!back[2].is_ok());
    }

    #[test]
    fn read_rejects_malformed_files() {
        let dir = std::env::temp_dir();
        let bad_header = dir.join(format!("ppdt_bencher_badh_{}.csv", std::process::id()));
        std::fs::write(&bad_header, "nope,nope\n1,2\n").unwrap();
        assert!(read_csv(&bad_header).is_err());
        let _ = std::fs::remove_file(&bad_header);

        let bad_cols = dir.join(format!("ppdt_bencher_badc_{}.csv", std::process::id()));
        std::fs::write(&bad_cols, format!("{CSV_HEADER}\n1,encode,2\n")).unwrap();
        assert!(read_csv(&bad_cols).is_err());
        let _ = std::fs::remove_file(&bad_cols);
    }
}
