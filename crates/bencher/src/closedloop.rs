//! Closed-loop drive helpers: fixed clients, back-to-back requests.
//!
//! These are the timing loops `serve_throughput` grew inline and the
//! regimes its committed reports are defined over — a *closed* loop
//! measures sustainable service throughput (each client waits for the
//! answer before sending again), which is the right tool for the
//! rows/sec headlines even though it cannot see overload latency
//! (that is [`crate::openloop`]'s job). Centralizing them here keeps
//! one implementation of each connection regime; the bench binary
//! calls these and owns only scenario composition and reporting.
//!
//! All helpers panic on a non-200 answer: a closed-loop benchmark's
//! numbers are meaningless if any request failed, so failures must
//! abort the run, not skew it.

use std::net::SocketAddr;
use std::time::Instant;

use ppdt_serve::{Client, RetryingClient};

/// Fans `clients` loopback clients out over `iters` sequential
/// requests each, panicking on any non-200, and returns elapsed
/// seconds. Each client is a [`RetryingClient`], so a transient
/// overload 503 costs a `Retry-After` sleep instead of a panic.
pub fn drive(addr: SocketAddr, clients: usize, iters: usize, path: &str, body: &str) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                let client = RetryingClient::new(addr);
                for _ in 0..iters {
                    let (status, text) =
                        client.request("POST", path, body).expect("loopback request");
                    assert_eq!(status, 200, "POST {path}: {text}");
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Like [`drive`], but each client keeps ONE socket for all its
/// requests and pipelines them in bursts of `depth` before reading
/// the answers back, in order.
pub fn drive_keepalive(
    addr: SocketAddr,
    clients: usize,
    iters: usize,
    depth: usize,
    path: &str,
    body: &str,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                let mut sent = 0usize;
                while sent < iters {
                    let burst = depth.min(iters - sent);
                    for _ in 0..burst {
                        client.send("POST", path, body).expect("pipelined send");
                    }
                    for _ in 0..burst {
                        let (status, text) = client.read_response().expect("pipelined response");
                        assert_eq!(status, 200, "POST {path}: {text}");
                    }
                    sent += burst;
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Streams a CSV relation up `POST /v1/encode` as a chunked body and
/// drains the chunked response; returns elapsed seconds.
pub fn drive_streaming(addr: SocketAddr, key_id: &str, csv: &str, iters: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut client = Client::connect(addr).expect("connect");
        client.send_chunked_head("POST", "/v1/encode").expect("chunked head");
        client.send_chunk(format!("{{\"key_id\": \"{key_id}\"}}\n").as_bytes()).expect("header");
        for piece in csv.as_bytes().chunks(64 * 1024) {
            client.send_chunk(piece).expect("chunk");
        }
        client.finish_chunks().expect("finish");
        let (status, text) = client.read_response().expect("streamed response");
        assert_eq!(status, 200, "streamed encode: {}", &text[..text.len().min(200)]);
        // The stream worker updates the chunk counters after the last
        // response byte; a follow-up on the same socket can only be
        // parsed once that job fully retired, so it fences the metrics
        // snapshot taken by the caller.
        let (status, _) = client.request("GET", "/healthz", "").expect("healthz");
        assert_eq!(status, 200);
    }
    t0.elapsed().as_secs_f64()
}
