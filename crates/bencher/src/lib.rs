//! # ppdt-bencher
//!
//! Open-loop load generation and a declarative experiment harness for
//! the `ppdt-serve` custodian daemon.
//!
//! Every number `serve_throughput` publishes is **closed-loop**: a
//! fixed set of clients issues the next request only after the
//! previous answer arrives, so the measured rate *is* the service
//! rate and latency under overload is invisible — the clients simply
//! slow down with the server (coordinated omission). This crate adds
//! the measurement the ROADMAP's serving claims actually need:
//!
//! * [`openloop`] — fire requests at a **controlled offered rate**
//!   from a schedule fixed before the run. A slow server does not
//!   slow the schedule down; it makes requests late, and the lateness
//!   (queue wait) and per-request latency are both recorded.
//! * [`config`] — the declarative experiment: endpoint mix, payload
//!   shape, rate sweep, duration, concurrency, connection regime,
//!   optional cluster targets. Strictly parsed — unknown fields are
//!   rejected, bounds are validated.
//! * [`record`] — one CSV line per request (schedule time, queue
//!   wait, latency, status, bytes, retry accounting), the raw
//!   artifact `scripts/bench_ingest.py` turns into a trajectory
//!   entry.
//! * [`summary`] — per-rate-step percentiles (p50/p95/p99/p999 via
//!   the shared [`ppdt_obs::LogHistogram`]) and the **knee** finder:
//!   the first rate step where 503s begin or p99 degrades past 5× the
//!   base-rate p99.
//! * [`orchestrate`] — spawn the daemon(s) from a `ppdt` binary the
//!   way the smoke scripts do, seed a key and a mined tree, run the
//!   sweep, write CSVs plus a machine-readable `summary.json`.
//! * [`closedloop`] — the closed-loop drive helpers that used to live
//!   inline in `serve_throughput`; the bench binary now drives its
//!   regimes through this library.
//!
//! The `ppdt-bencher` binary wires these together:
//!
//! ```text
//! ppdt-bencher --config experiment.json --out-dir out/ --ppdt target/release/ppdt
//! ppdt-bencher --config experiment.json --out-dir out/ --target 127.0.0.1:7070
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod closedloop;
pub mod config;
pub mod openloop;
pub mod orchestrate;
pub mod record;
pub mod summary;

pub use config::{BenchEndpoint, Connection, ExperimentConfig, MixEntry};
pub use record::RequestRecord;
pub use summary::{find_knee, summarize, StepSummary};

/// Schema version of the `summary.json` an orchestrated sweep writes
/// (`openloop_schema_version` in the document); bump on breaking
/// shape changes so `scripts/bench_compare.py` can gate on it.
pub const OPENLOOP_SCHEMA_VERSION: u64 = 1;
