//! Orchestrator mode: spawn the daemon(s), seed the workload, run
//! the sweep, write the artifacts.
//!
//! The orchestrator reproduces by library call what
//! `scripts/serve_smoke.py` and `scripts/cluster_smoke.py` do by
//! hand: launch `ppdt serve` with an OS-assigned port, parse the
//! `ppdt-serve listening on <addr> ...` line off stdout, and tear the
//! process down with SIGTERM so the daemon drains instead of dying
//! mid-request. Multi-node experiments (`nodes` > 1) wire each new
//! daemon to every previously spawned one via `--peer`, matching the
//! cluster smoke topology; the key is seeded once and replication /
//! read-through fetch distributes it.
//!
//! [`run_sweep`] is the experiment driver: materialize payloads from
//! the config's seed and scale, store the key, then execute one
//! [`crate::openloop::run_step`] per configured rate, writing
//! `step_<k>_<rate>.csv` per step and a machine-readable
//! `summary.json` (schema [`crate::OPENLOOP_SCHEMA_VERSION`]) with
//! per-step percentiles and the located overload knee.

use std::io::BufRead as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppdt_error::PpdtError;
use ppdt_serve::api::{ClassifyRequest, EncodeRequest, StoreKeyRequest, StoreKeyResponse};
use ppdt_serve::RetryingClient;
use ppdt_transform::{EncodeConfig, Encoder};
use ppdt_tree::{DecisionTree, TreeBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize as _, Value};

use crate::config::ExperimentConfig;
use crate::openloop::{run_step, Payloads, StepPlan};
use crate::record::write_csv;
use crate::summary::{find_knee, summarize, StepSummary};

fn io_err(what: impl std::fmt::Display) -> PpdtError {
    PpdtError::Io { path: None, detail: what.to_string() }
}

/// A `ppdt serve` child process the orchestrator owns.
///
/// Dropping a still-running daemon kills it hard (SIGKILL) as a
/// leak guard; call [`SpawnedDaemon::stop`] for the graceful SIGTERM
/// drain.
#[derive(Debug)]
pub struct SpawnedDaemon {
    child: Child,
    /// The bound address parsed off the daemon's listen line.
    pub addr: SocketAddr,
    keystore_dir: PathBuf,
}

impl SpawnedDaemon {
    /// Spawns `ppdt serve --keystore-dir <dir> --addr 127.0.0.1:0`
    /// (plus a `--peer` per entry of `peers`) and waits for the
    /// listen line. `extra_args` append verbatim, e.g.
    /// `["--queue", "64"]`.
    pub fn spawn(
        ppdt: &Path,
        keystore_dir: &Path,
        peers: &[SocketAddr],
        extra_args: &[String],
    ) -> Result<SpawnedDaemon, PpdtError> {
        std::fs::create_dir_all(keystore_dir)
            .map_err(|e| io_err(format_args!("create {}: {e}", keystore_dir.display())))?;
        let mut cmd = Command::new(ppdt);
        cmd.arg("serve")
            .arg("--keystore-dir")
            .arg(keystore_dir)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for p in peers {
            cmd.arg("--peer").arg(p.to_string());
        }
        cmd.args(extra_args);
        let mut child =
            cmd.spawn().map_err(|e| io_err(format_args!("spawn {}: {e}", ppdt.display())))?;

        // The daemon prints exactly one line once bound; scripts (and
        // we) block on it.
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let line = match lines.next() {
            Some(Ok(l)) => l,
            other => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io_err(format_args!("daemon wrote no listen line: {other:?}")));
            }
        };
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok());
        let addr: SocketAddr = match addr {
            Some(a) => a,
            None => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io_err(format_args!("unparseable listen line: {line:?}")));
            }
        };
        // Drain any further stdout (the drain notice) on a reaper
        // thread so the pipe can never fill and block the daemon.
        std::thread::spawn(move || for _ in lines {});
        Ok(SpawnedDaemon { child, addr, keystore_dir: keystore_dir.to_path_buf() })
    }

    /// Graceful stop: SIGTERM (the daemon drains in-flight requests),
    /// bounded wait, SIGKILL fallback. Removes the keystore dir.
    pub fn stop(mut self) -> Result<(), PpdtError> {
        // `Child::kill` is SIGKILL; the drain path needs a real
        // SIGTERM, which std cannot send — shell out for it.
        let _ = Command::new("kill").arg("-TERM").arg(self.child.id().to_string()).status();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50))
                }
                // Timed out or errored: fall through to Drop, whose
                // SIGKILL ends it.
                _ => break,
            }
        }
        // Drop reaps (kill on an already-exited child is a harmless
        // error) and removes the keystore dir.
        Ok(())
    }
}

impl Drop for SpawnedDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.keystore_dir);
    }
}

/// Spawns `cfg.nodes` daemons off one `ppdt` binary, each peered with
/// every earlier node (the cluster-smoke topology). Returns them in
/// spawn order; node 0 is where [`run_sweep`] seeds the key.
pub fn spawn_cluster(
    ppdt: &Path,
    cfg: &ExperimentConfig,
    scratch: &Path,
    extra_args: &[String],
) -> Result<Vec<SpawnedDaemon>, PpdtError> {
    let mut daemons: Vec<SpawnedDaemon> = Vec::with_capacity(cfg.nodes);
    for n in 0..cfg.nodes {
        let dir = scratch.join(format!("node{n}"));
        let peers: Vec<SocketAddr> = daemons.iter().map(|d| d.addr).collect();
        daemons.push(SpawnedDaemon::spawn(ppdt, &dir, &peers, extra_args)?);
    }
    Ok(daemons)
}

/// The materialized workload: a key to store and the request bodies
/// built from it, reproducible from `(seed, scale, rows_per_request)`.
#[derive(Debug)]
struct Workload {
    store_key_body: String,
    rows: Vec<Vec<f64>>,
    tree: DecisionTree,
}

fn materialize(cfg: &ExperimentConfig) -> Workload {
    use ppdt_data::gen::{covertype_like, CovertypeConfig};
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = covertype_like(&mut rng, &CovertypeConfig::at_scale(cfg.scale));
    let (key, d_prime) = Encoder::new(EncodeConfig::default())
        .encode(&mut rng, &d)
        .expect("encode generated dataset")
        .into_parts();
    let tree = TreeBuilder::default().fit(&d_prime);
    let all_rows: Vec<Vec<f64>> =
        (0..d.num_rows()).map(|i| d.schema().attrs().map(|a| d.column(a)[i]).collect()).collect();
    // Cycle if the config asks for more rows per request than the
    // scaled relation holds.
    let rows: Vec<Vec<f64>> =
        (0..cfg.rows_per_request).map(|i| all_rows[i % all_rows.len()].clone()).collect();
    let store_key_body = serde_json::to_string(&StoreKeyRequest { key }).expect("key serializes");
    Workload { store_key_body, rows, tree }
}

/// Stores the workload key on `addr` under the experiment's tenant
/// and builds the per-endpoint routes and request bodies around the
/// returned key id.
fn seed_payloads(
    addr: SocketAddr,
    tenant: &ppdt_serve::Tenant,
    w: &Workload,
) -> Result<Payloads, PpdtError> {
    let prefix = tenant.route_prefix();
    let client = RetryingClient::new(addr);
    let (status, text) = client.request("POST", &format!("{prefix}/keys"), &w.store_key_body)?;
    if status != 201 && status != 200 {
        return Err(io_err(format_args!("store key: HTTP {status}: {text}")));
    }
    let stored: StoreKeyResponse =
        serde_json::from_str(&text).map_err(|e| io_err(format_args!("store key response: {e}")))?;
    let encode_body = serde_json::to_string(&EncodeRequest {
        key_id: stored.key_id.clone(),
        csv: None,
        rows: Some(w.rows.clone()),
    })
    .expect("encode request serializes");
    let classify_body = serde_json::to_string(&ClassifyRequest {
        key_id: stored.key_id,
        tree: w.tree.clone(),
        rows: w.rows.clone(),
    })
    .expect("classify request serializes");
    Ok(Payloads {
        encode_path: format!("{prefix}/encode"),
        classify_path: format!("{prefix}/classify"),
        list_keys_path: format!("{prefix}/keys"),
        encode_body,
        classify_body,
    })
}

/// A finished sweep: the per-step summaries, the knee, and where the
/// artifacts went.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One summary per configured rate, in sweep order.
    pub steps: Vec<StepSummary>,
    /// Index into `steps` of the overload knee, when one appeared.
    pub knee: Option<usize>,
    /// Path of the written `summary.json`.
    pub summary_path: PathBuf,
    /// Paths of the per-step CSVs, in sweep order.
    pub csv_paths: Vec<PathBuf>,
}

/// Runs the configured rate sweep against `targets`, writing one
/// per-request CSV per step plus `summary.json` into `out_dir`.
/// Progress goes to stderr so stdout stays machine-readable for
/// callers that pipe it.
pub fn run_sweep(
    cfg: &ExperimentConfig,
    targets: &[SocketAddr],
    out_dir: &Path,
) -> Result<SweepOutcome, PpdtError> {
    if targets.is_empty() {
        return Err(io_err("run_sweep needs at least one target"));
    }
    std::fs::create_dir_all(out_dir)
        .map_err(|e| io_err(format_args!("create {}: {e}", out_dir.display())))?;
    let workload = materialize(cfg);
    let payloads = seed_payloads(targets[0], &cfg.parsed_tenant(), &workload)?;

    let mut steps = Vec::with_capacity(cfg.rates.len());
    let mut csv_paths = Vec::with_capacity(cfg.rates.len());
    for (k, &rate) in cfg.rates.iter().enumerate() {
        eprintln!("ppdt-bencher: step {}/{} at {rate} req/s", k + 1, cfg.rates.len());
        let plan = StepPlan {
            targets,
            rate,
            duration: Duration::from_secs_f64(cfg.duration_secs),
            concurrency: cfg.concurrency,
            connection: cfg.connection,
            mix: &cfg.mix,
            payloads: &payloads,
            max_attempts: cfg.max_attempts,
        };
        let records = run_step(&plan);
        let csv_path = out_dir.join(format!("step_{k}_{rate}.csv"));
        write_csv(&csv_path, &records)?;
        let s = summarize(rate, &records);
        eprintln!(
            "ppdt-bencher:   achieved {:.1}/s ok={} rejected={} errors={} p50={}us p99={}us",
            s.achieved_rate,
            s.ok,
            s.rejected,
            s.transport_errors + s.other_errors,
            s.p50_us,
            s.p99_us
        );
        steps.push(s);
        csv_paths.push(csv_path);
    }

    let knee = find_knee(&steps);
    let summary_path = out_dir.join("summary.json");
    let doc = summary_value(cfg, &steps, knee);
    std::fs::write(&summary_path, serde_json::to_string_pretty(&doc).expect("summary"))
        .map_err(|e| io_err(format_args!("write {}: {e}", summary_path.display())))?;
    Ok(SweepOutcome { steps, knee, summary_path, csv_paths })
}

/// The `summary.json` document (see [`crate::OPENLOOP_SCHEMA_VERSION`]).
fn summary_value(cfg: &ExperimentConfig, steps: &[StepSummary], knee: Option<usize>) -> Value {
    let knee_value = match knee {
        Some(i) => Value::Object(vec![
            ("index".to_string(), Value::UInt(i as u64)),
            ("offered_rate".to_string(), Value::Float(steps[i].offered_rate)),
            ("rejected".to_string(), Value::UInt(steps[i].rejected)),
            ("p99_us".to_string(), Value::UInt(steps[i].p99_us)),
        ]),
        None => Value::Null,
    };
    Value::Object(vec![
        ("openloop_schema_version".to_string(), Value::UInt(crate::OPENLOOP_SCHEMA_VERSION)),
        ("name".to_string(), Value::Str(cfg.name.clone())),
        ("config".to_string(), cfg.to_value()),
        ("steps".to_string(), Value::Array(steps.iter().map(|s| s.to_value()).collect())),
        ("knee".to_string(), knee_value),
    ])
}
