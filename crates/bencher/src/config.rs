//! Declarative experiment configuration, strictly parsed.
//!
//! An experiment is a JSON document naming the workload (endpoint mix
//! and payload shape), the offered-load schedule (rate sweep ×
//! duration × concurrency), and the connection regime. The parser is
//! deliberately strict: **unknown fields are rejected** (a typo like
//! `"durations_secs"` must fail loudly, not silently run the default)
//! and every numeric field is bounds-checked at parse time, so a bad
//! config dies before a daemon is spawned. The vendored serde shim's
//! derive has no `deny_unknown_fields`, so the parser walks the
//! [`serde::Value`] tree by hand.
//!
//! ```json
//! {
//!   "name": "encode-sweep",
//!   "seed": 7,
//!   "scale": 0.001,
//!   "mix": [ {"endpoint": "encode", "weight": 8},
//!            {"endpoint": "classify", "weight": 3},
//!            {"endpoint": "list_keys", "weight": 1} ],
//!   "rows_per_request": 64,
//!   "rates": [25, 50, 100, 200, 400, 800],
//!   "duration_secs": 6.0,
//!   "concurrency": 4,
//!   "connection": "keepalive",
//!   "max_attempts": 1,
//!   "nodes": 1,
//!   "targets": []
//! }
//! ```

use ppdt_error::PpdtError;
use serde::Value;

/// The endpoints an experiment can weight in its mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchEndpoint {
    /// `POST /v1/encode` with a batch of raw rows.
    Encode,
    /// `POST /v1/classify` with raw query rows against the mined tree.
    Classify,
    /// `GET /v1/keys` — a cheap read, the health-check-shaped traffic.
    ListKeys,
}

impl BenchEndpoint {
    /// Stable config/CSV name.
    pub fn name(self) -> &'static str {
        match self {
            BenchEndpoint::Encode => "encode",
            BenchEndpoint::Classify => "classify",
            BenchEndpoint::ListKeys => "list_keys",
        }
    }

    fn parse(s: &str) -> Option<BenchEndpoint> {
        match s {
            "encode" => Some(BenchEndpoint::Encode),
            "classify" => Some(BenchEndpoint::Classify),
            "list_keys" => Some(BenchEndpoint::ListKeys),
            _ => None,
        }
    }
}

/// One weighted entry of the endpoint mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixEntry {
    /// Which endpoint.
    pub endpoint: BenchEndpoint,
    /// Relative weight (≥ 1); a tick fires `endpoint` with
    /// probability `weight / Σ weights`.
    pub weight: u32,
}

/// Connection regime of the load generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Connection {
    /// Each worker keeps one socket open across requests (reconnects
    /// after an error or an overload 503, which closes the socket).
    Keepalive,
    /// A fresh `Connection: close` socket per request, via
    /// [`ppdt_serve::RetryingClient`].
    Fresh,
}

impl Connection {
    /// Stable config name.
    pub fn name(self) -> &'static str {
        match self {
            Connection::Keepalive => "keepalive",
            Connection::Fresh => "fresh",
        }
    }
}

/// A fully validated experiment: see the module docs for the JSON
/// shape and [`ExperimentConfig::from_json`] for the invariants.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Experiment name (output files and reports carry it).
    pub name: String,
    /// Master seed for dataset/key generation.
    pub seed: u64,
    /// Dataset scale (fraction of the covertype relation) used to
    /// materialize the workload payloads.
    pub scale: f64,
    /// Weighted endpoint mix (non-empty).
    pub mix: Vec<MixEntry>,
    /// Rows carried by each encode/classify request body.
    pub rows_per_request: usize,
    /// Offered rates to sweep, requests/second, strictly ascending.
    pub rates: Vec<f64>,
    /// Seconds each rate step runs.
    pub duration_secs: f64,
    /// Load-generator workers (each owns an interleaved slice of the
    /// tick schedule).
    pub concurrency: usize,
    /// Connection regime.
    pub connection: Connection,
    /// Retry budget per request in the `fresh` regime (1 = never
    /// retry; keep-alive always measures single attempts).
    pub max_attempts: usize,
    /// Daemons the orchestrator spawns (ignored when `targets` or an
    /// explicit `--target` points at a running cluster).
    pub nodes: usize,
    /// Pre-existing daemon addresses to load instead of spawning.
    pub targets: Vec<String>,
    /// Tenant the workload runs under. `"default"` drives the `/v1`
    /// surface; any other name drives the `/v2/t/{tenant}/` routes,
    /// so a sweep can exercise the tenant-scoped path end to end.
    pub tenant: String,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            name: "experiment".to_string(),
            seed: 7,
            scale: 0.001,
            mix: vec![MixEntry { endpoint: BenchEndpoint::Encode, weight: 1 }],
            rows_per_request: 64,
            rates: vec![50.0],
            duration_secs: 5.0,
            concurrency: 4,
            connection: Connection::Keepalive,
            max_attempts: 1,
            nodes: 1,
            targets: Vec::new(),
            tenant: "default".to_string(),
        }
    }
}

fn bad(param: &str, detail: impl std::fmt::Display) -> PpdtError {
    PpdtError::InvalidConfig { param: param.to_string(), detail: detail.to_string() }
}

fn num(v: &Value, param: &str) -> Result<f64, PpdtError> {
    v.as_f64().ok_or_else(|| bad(param, format_args!("expected a number, got {}", v.kind())))
}

fn uint(v: &Value, param: &str) -> Result<u64, PpdtError> {
    let f = num(v, param)?;
    if f < 0.0 || f.fract() != 0.0 || f > u64::MAX as f64 {
        return Err(bad(param, format_args!("expected a non-negative integer, got {f}")));
    }
    Ok(f as u64)
}

fn string(v: &Value, param: &str) -> Result<String, PpdtError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| bad(param, format_args!("expected a string, got {}", v.kind())))
}

impl ExperimentConfig {
    /// Parses and validates a JSON experiment document. Unknown
    /// fields anywhere in the document are an error; so is an empty
    /// or non-ascending rate list, a non-positive weight, or any
    /// value outside its documented range (`duration_secs` ∈ (0,
    /// 3600], `concurrency` ∈ [1, 1024], `max_attempts` ∈ [1, 16],
    /// `rows_per_request` ∈ [1, 100000], `scale` ∈ (0, 1],
    /// `nodes` ∈ [1, 8]).
    pub fn from_json(text: &str) -> Result<ExperimentConfig, PpdtError> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| bad("experiment", format_args!("not valid JSON: {e}")))?;
        let obj =
            doc.as_object().ok_or_else(|| bad("experiment", "top level must be an object"))?;

        const KNOWN: &[&str] = &[
            "name",
            "seed",
            "scale",
            "mix",
            "rows_per_request",
            "rates",
            "duration_secs",
            "concurrency",
            "connection",
            "max_attempts",
            "nodes",
            "targets",
            "tenant",
        ];
        for (k, _) in obj {
            if !KNOWN.contains(&k.as_str()) {
                return Err(bad(k, "unknown field (strict parse; check for typos)"));
            }
        }

        let mut cfg = ExperimentConfig::default();

        let name = doc.get("name").ok_or_else(|| bad("name", "required field is missing"))?;
        cfg.name = string(name, "name")?;
        if cfg.name.is_empty() {
            return Err(bad("name", "must be non-empty"));
        }

        if let Some(v) = doc.get("seed") {
            cfg.seed = uint(v, "seed")?;
        }
        if let Some(v) = doc.get("scale") {
            cfg.scale = num(v, "scale")?;
            if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
                return Err(bad("scale", format_args!("must be in (0, 1], got {}", cfg.scale)));
            }
        }

        let mix = doc.get("mix").ok_or_else(|| bad("mix", "required field is missing"))?;
        let entries =
            mix.as_array().ok_or_else(|| bad("mix", "expected an array of {endpoint, weight}"))?;
        if entries.is_empty() {
            return Err(bad("mix", "must name at least one endpoint"));
        }
        cfg.mix = entries
            .iter()
            .map(|e| {
                let obj = e.as_object().ok_or_else(|| bad("mix", "entries must be objects"))?;
                for (k, _) in obj {
                    if k != "endpoint" && k != "weight" {
                        return Err(bad(
                            &format!("mix.{k}"),
                            "unknown field (strict parse; check for typos)",
                        ));
                    }
                }
                let name = e
                    .get("endpoint")
                    .ok_or_else(|| bad("mix.endpoint", "required field is missing"))?;
                let name = string(name, "mix.endpoint")?;
                let endpoint = BenchEndpoint::parse(&name).ok_or_else(|| {
                    bad(
                        "mix.endpoint",
                        format_args!("unknown endpoint {name:?} (encode|classify|list_keys)"),
                    )
                })?;
                let weight = match e.get("weight") {
                    Some(w) => uint(w, "mix.weight")?,
                    None => 1,
                };
                if weight == 0 || weight > 1_000_000 {
                    return Err(bad(
                        "mix.weight",
                        format_args!("must be in [1, 1000000], got {weight}"),
                    ));
                }
                Ok(MixEntry { endpoint, weight: weight as u32 })
            })
            .collect::<Result<_, _>>()?;
        for (i, a) in cfg.mix.iter().enumerate() {
            if cfg.mix[..i].iter().any(|b| b.endpoint == a.endpoint) {
                return Err(bad(
                    "mix",
                    format_args!("endpoint {:?} listed twice", a.endpoint.name()),
                ));
            }
        }

        if let Some(v) = doc.get("rows_per_request") {
            let n = uint(v, "rows_per_request")?;
            if n == 0 || n > 100_000 {
                return Err(bad(
                    "rows_per_request",
                    format_args!("must be in [1, 100000], got {n}"),
                ));
            }
            cfg.rows_per_request = n as usize;
        }

        let rates = doc.get("rates").ok_or_else(|| bad("rates", "required field is missing"))?;
        let rates = rates.as_array().ok_or_else(|| bad("rates", "expected an array of numbers"))?;
        if rates.is_empty() {
            return Err(bad("rates", "must list at least one rate"));
        }
        cfg.rates = rates.iter().map(|r| num(r, "rates")).collect::<Result<_, _>>()?;
        for (i, &r) in cfg.rates.iter().enumerate() {
            if !(r.is_finite() && r > 0.0 && r <= 1_000_000.0) {
                return Err(bad("rates", format_args!("must be in (0, 1e6] req/s, got {r}")));
            }
            if i > 0 && r <= cfg.rates[i - 1] {
                return Err(bad("rates", "must be strictly ascending (the sweep walks up)"));
            }
        }

        if let Some(v) = doc.get("duration_secs") {
            cfg.duration_secs = num(v, "duration_secs")?;
        }
        if !(cfg.duration_secs > 0.0 && cfg.duration_secs <= 3600.0) {
            return Err(bad(
                "duration_secs",
                format_args!("must be in (0, 3600], got {}", cfg.duration_secs),
            ));
        }

        if let Some(v) = doc.get("concurrency") {
            let n = uint(v, "concurrency")?;
            if n == 0 || n > 1024 {
                return Err(bad("concurrency", format_args!("must be in [1, 1024], got {n}")));
            }
            cfg.concurrency = n as usize;
        }

        if let Some(v) = doc.get("connection") {
            cfg.connection = match string(v, "connection")?.as_str() {
                "keepalive" => Connection::Keepalive,
                "fresh" => Connection::Fresh,
                other => {
                    return Err(bad(
                        "connection",
                        format_args!("unknown regime {other:?} (keepalive|fresh)"),
                    ));
                }
            };
        }

        if let Some(v) = doc.get("max_attempts") {
            let n = uint(v, "max_attempts")?;
            if n == 0 || n > 16 {
                return Err(bad("max_attempts", format_args!("must be in [1, 16], got {n}")));
            }
            cfg.max_attempts = n as usize;
        }

        if let Some(v) = doc.get("nodes") {
            let n = uint(v, "nodes")?;
            if n == 0 || n > 8 {
                return Err(bad("nodes", format_args!("must be in [1, 8], got {n}")));
            }
            cfg.nodes = n as usize;
        }

        if let Some(v) = doc.get("targets") {
            let arr =
                v.as_array().ok_or_else(|| bad("targets", "expected an array of HOST:PORT"))?;
            cfg.targets = arr.iter().map(|t| string(t, "targets")).collect::<Result<_, _>>()?;
            for t in &cfg.targets {
                if t.parse::<std::net::SocketAddr>().is_err() {
                    return Err(bad("targets", format_args!("cannot parse {t:?} as HOST:PORT")));
                }
            }
        }

        if let Some(v) = doc.get("tenant") {
            cfg.tenant = string(v, "tenant")?;
            if ppdt_serve::Tenant::parse(&cfg.tenant).is_none() {
                return Err(bad(
                    "tenant",
                    format_args!(
                        "invalid tenant name {:?} (lowercase [a-z0-9_-], 1..=32 chars)",
                        cfg.tenant
                    ),
                ));
            }
        }

        Ok(cfg)
    }

    /// Renders the config back to its canonical JSON document —
    /// `from_json(to_json(c)) == c` (the golden round-trip test pins
    /// this), and sweeps echo it into `summary.json` so a result file
    /// names the experiment that produced it.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("config serializes")
    }

    pub(crate) fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("scale".to_string(), Value::Float(self.scale)),
            (
                "mix".to_string(),
                Value::Array(
                    self.mix
                        .iter()
                        .map(|m| {
                            Value::Object(vec![
                                ("endpoint".to_string(), Value::Str(m.endpoint.name().to_string())),
                                ("weight".to_string(), Value::UInt(u64::from(m.weight))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("rows_per_request".to_string(), Value::UInt(self.rows_per_request as u64)),
            (
                "rates".to_string(),
                Value::Array(self.rates.iter().map(|&r| Value::Float(r)).collect()),
            ),
            ("duration_secs".to_string(), Value::Float(self.duration_secs)),
            ("concurrency".to_string(), Value::UInt(self.concurrency as u64)),
            ("connection".to_string(), Value::Str(self.connection.name().to_string())),
            ("max_attempts".to_string(), Value::UInt(self.max_attempts as u64)),
            ("nodes".to_string(), Value::UInt(self.nodes as u64)),
            (
                "targets".to_string(),
                Value::Array(self.targets.iter().map(|t| Value::Str(t.clone())).collect()),
            ),
            ("tenant".to_string(), Value::Str(self.tenant.clone())),
        ])
    }

    /// The parsed tenant (validated at parse time, so this cannot
    /// fail for a config built by [`ExperimentConfig::from_json`]).
    pub fn parsed_tenant(&self) -> ppdt_serve::Tenant {
        ppdt_serve::Tenant::parse(&self.tenant).expect("tenant validated at parse time")
    }

    /// Total weight of the mix (> 0 by construction).
    pub fn total_weight(&self) -> u64 {
        self.mix.iter().map(|m| u64::from(m.weight)).sum()
    }
}

impl serde::Serialize for ExperimentConfig {
    fn to_value(&self) -> Value {
        ExperimentConfig::to_value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"{"name": "t", "mix": [{"endpoint": "encode"}], "rates": [10]}"#.to_string()
    }

    #[test]
    fn minimal_config_takes_defaults() {
        let cfg = ExperimentConfig::from_json(&minimal()).unwrap();
        assert_eq!(cfg.name, "t");
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.mix, vec![MixEntry { endpoint: BenchEndpoint::Encode, weight: 1 }]);
        assert_eq!(cfg.rates, vec![10.0]);
        assert_eq!(cfg.connection, Connection::Keepalive);
        assert_eq!(cfg.max_attempts, 1);
        assert_eq!(cfg.nodes, 1);
        assert!(cfg.targets.is_empty());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        // Top level: a typo'd field name must not silently no-op.
        let text = r#"{"name": "t", "mix": [{"endpoint": "encode"}],
                       "rates": [10], "durations_secs": 5}"#;
        let err = ExperimentConfig::from_json(text).unwrap_err();
        assert!(err.to_string().contains("durations_secs"), "{err}");
        assert!(err.to_string().contains("unknown field"), "{err}");
        // Inside a mix entry too.
        let text = r#"{"name": "t", "rates": [10],
                       "mix": [{"endpoint": "encode", "wieght": 3}]}"#;
        let err = ExperimentConfig::from_json(text).unwrap_err();
        assert!(err.to_string().contains("wieght"), "{err}");
    }

    #[test]
    fn bounds_are_validated() {
        let cases: &[(&str, &str)] = &[
            // (fragment replacing the defaults, expected param in the error)
            (r#""rates": []"#, "rates"),
            (r#""rates": [10, 10]"#, "rates"),
            (r#""rates": [100, 50]"#, "rates"),
            (r#""rates": [0]"#, "rates"),
            (r#""rates": [10], "duration_secs": 0"#, "duration_secs"),
            (r#""rates": [10], "duration_secs": 3601"#, "duration_secs"),
            (r#""rates": [10], "concurrency": 0"#, "concurrency"),
            (r#""rates": [10], "concurrency": 2000"#, "concurrency"),
            (r#""rates": [10], "max_attempts": 0"#, "max_attempts"),
            (r#""rates": [10], "max_attempts": 99"#, "max_attempts"),
            (r#""rates": [10], "rows_per_request": 0"#, "rows_per_request"),
            (r#""rates": [10], "scale": 0"#, "scale"),
            (r#""rates": [10], "scale": 1.5"#, "scale"),
            (r#""rates": [10], "nodes": 0"#, "nodes"),
            (r#""rates": [10], "connection": "udp""#, "connection"),
            (r#""rates": [10], "targets": ["nonsense"]"#, "targets"),
            (r#""rates": [10], "seed": -1"#, "seed"),
        ];
        for (fragment, param) in cases {
            let text = format!(r#"{{"name": "t", "mix": [{{"endpoint": "encode"}}], {fragment}}}"#);
            let err =
                ExperimentConfig::from_json(&text).expect_err(&format!("must reject {fragment}"));
            assert!(err.to_string().contains(param), "{fragment}: {err}");
        }
        // Missing required fields.
        for text in [
            r#"{"mix": [{"endpoint": "encode"}], "rates": [1]}"#,
            r#"{"name": "t", "rates": [1]}"#,
            r#"{"name": "t", "mix": [{"endpoint": "encode"}]}"#,
        ] {
            ExperimentConfig::from_json(text).expect_err("must reject missing required field");
        }
        // Duplicate mix endpoints.
        let text = r#"{"name": "t", "rates": [1],
                       "mix": [{"endpoint": "encode"}, {"endpoint": "encode"}]}"#;
        ExperimentConfig::from_json(text).expect_err("must reject duplicate endpoints");
    }

    #[test]
    fn golden_config_round_trips() {
        let text = r#"{
          "name": "encode-sweep",
          "seed": 11,
          "scale": 0.002,
          "mix": [
            {"endpoint": "encode", "weight": 8},
            {"endpoint": "classify", "weight": 3},
            {"endpoint": "list_keys", "weight": 1}
          ],
          "rows_per_request": 128,
          "rates": [25, 50, 100, 200],
          "duration_secs": 6.0,
          "concurrency": 4,
          "connection": "keepalive",
          "max_attempts": 2,
          "nodes": 1,
          "targets": ["127.0.0.1:7070"]
        }"#;
        let cfg = ExperimentConfig::from_json(text).unwrap();
        assert_eq!(cfg.mix.len(), 3);
        assert_eq!(cfg.total_weight(), 12);
        // to_json(from_json(x)) parses back to the identical config —
        // the canonical form is a fixed point.
        let echoed = cfg.to_json();
        let back = ExperimentConfig::from_json(&echoed).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.to_json(), echoed);
    }
}
