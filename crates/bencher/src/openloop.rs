//! The open-loop runner: fire requests on a schedule fixed before
//! the run, regardless of how the server responds.
//!
//! A closed-loop driver waits for each answer before sending the next
//! request, so a slow server receives *less* load exactly when it is
//! slow — the measured latency distribution silently omits the
//! requests that would have queued (coordinated omission). The
//! open-loop runner instead derives every send time from the offered
//! rate alone: tick `i` fires at `start + i/rate`. A slow server
//! makes ticks *late*, and the lateness is recorded per request as
//! [`RequestRecord::wait_us`] alongside the exchange latency.
//!
//! Concurrency is a partially-open worker pool: worker `w` of `c`
//! owns exactly the ticks `i ≡ w (mod c)`, so the schedule needs no
//! shared queue, no locks, and is perfectly reproducible. A worker
//! that falls behind (its previous exchange outlived the next tick)
//! fires immediately and the slip shows up in `wait_us` — ticks are
//! never dropped. The endpoint for tick `i` is a deterministic
//! weighted hash of `i`, so two runs of the same config issue the
//! same request sequence.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ppdt_serve::client::ClientConfig;
use ppdt_serve::{Client, RetryingClient};
use ppdt_transform::RetryPolicy;

use crate::config::{BenchEndpoint, Connection, MixEntry};
use crate::record::RequestRecord;

/// Request bodies and routes for the weighted endpoints, materialized
/// once per experiment (see [`crate::orchestrate`]). The paths carry
/// the experiment's tenant: `/v1/...` for the default tenant,
/// `/v2/t/{tenant}/...` otherwise.
#[derive(Clone, Debug)]
pub struct Payloads {
    /// Encode route (`{prefix}/encode`).
    pub encode_path: String,
    /// Classify route (`{prefix}/classify`).
    pub classify_path: String,
    /// Key-listing route (`{prefix}/keys`).
    pub list_keys_path: String,
    /// Encode body (key id + rows).
    pub encode_body: String,
    /// Classify body (key id + tree + rows).
    pub classify_body: String,
}

/// One rate step to execute.
#[derive(Clone, Debug)]
pub struct StepPlan<'a> {
    /// Daemon addresses; worker `w` pins to `targets[w % len]`, so a
    /// multi-node sweep spreads workers round-robin over the cluster.
    pub targets: &'a [SocketAddr],
    /// Offered rate, requests/second.
    pub rate: f64,
    /// How long to run the schedule.
    pub duration: Duration,
    /// Worker count.
    pub concurrency: usize,
    /// Connection regime.
    pub connection: Connection,
    /// Weighted endpoint mix (non-empty).
    pub mix: &'a [MixEntry],
    /// Materialized request bodies.
    pub payloads: &'a Payloads,
    /// Retry budget in the `fresh` regime (1 = never retry).
    pub max_attempts: usize,
}

/// splitmix64 finalizer — a cheap, well-mixed hash of the tick index
/// used to pick the endpoint deterministically.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The endpoint tick `i` fires: weighted choice by hashed index.
fn endpoint_for(i: u64, mix: &[MixEntry], total_weight: u64) -> BenchEndpoint {
    let mut pick = mix64(i) % total_weight;
    for m in mix {
        let w = u64::from(m.weight);
        if pick < w {
            return m.endpoint;
        }
        pick -= w;
    }
    mix[mix.len() - 1].endpoint
}

fn method_path_body(e: BenchEndpoint, p: &Payloads) -> (&'static str, &str, &str) {
    match e {
        BenchEndpoint::Encode => ("POST", p.encode_path.as_str(), p.encode_body.as_str()),
        BenchEndpoint::Classify => ("POST", p.classify_path.as_str(), p.classify_body.as_str()),
        BenchEndpoint::ListKeys => ("GET", p.list_keys_path.as_str(), ""),
    }
}

/// Runs one rate step and returns every record, in tick order. The
/// schedule has `ceil(rate × duration)` ticks; the runner returns
/// once the last tick's exchange finishes (it does not cut off
/// in-flight requests at the duration boundary).
pub fn run_step(plan: &StepPlan<'_>) -> Vec<RequestRecord> {
    assert!(!plan.targets.is_empty(), "run_step needs at least one target");
    assert!(!plan.mix.is_empty(), "run_step needs a non-empty mix");
    let total_ticks = ((plan.rate * plan.duration.as_secs_f64()).ceil() as u64).max(1);
    let total_weight: u64 = plan.mix.iter().map(|m| u64::from(m.weight)).sum();
    let interval = Duration::from_secs_f64(1.0 / plan.rate);
    let workers = plan.concurrency.min(total_ticks as usize).max(1);
    let start = Instant::now();

    let mut per_worker: Vec<Vec<RequestRecord>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let target = plan.targets[w % plan.targets.len()];
                s.spawn(move || {
                    worker_loop(
                        plan,
                        w,
                        workers,
                        target,
                        total_ticks,
                        total_weight,
                        interval,
                        start,
                    )
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("bencher worker panicked"));
        }
    });

    let mut records: Vec<RequestRecord> = per_worker.into_iter().flatten().collect();
    records.sort_by_key(|r| r.seq);
    records
}

/// A fresh-socket client honoring the step's retry budget.
fn fresh_client(target: SocketAddr, max_attempts: usize) -> RetryingClient {
    RetryingClient::with_config(
        target,
        ClientConfig {
            retry: RetryPolicy::failing(max_attempts.max(1)),
            ..ClientConfig::default()
        },
    )
}

#[allow(clippy::too_many_arguments)] // one call site; a struct would just rename these
fn worker_loop(
    plan: &StepPlan<'_>,
    w: usize,
    workers: usize,
    target: SocketAddr,
    total_ticks: u64,
    total_weight: u64,
    interval: Duration,
    start: Instant,
) -> Vec<RequestRecord> {
    let mut out = Vec::with_capacity((total_ticks as usize).div_ceil(workers));
    // Keep-alive regime: one persistent socket, re-dialed lazily
    // after any error (a 503 always closes the connection).
    let mut conn: Option<Client> = None;
    let fresh = fresh_client(target, plan.max_attempts);

    let mut i = w as u64;
    while i < total_ticks {
        let sched = interval.mul_f64(i as f64);
        let now = start.elapsed();
        if now < sched {
            std::thread::sleep(sched - now);
        }
        let endpoint = endpoint_for(i, plan.mix, total_weight);
        let (method, path, body) = method_path_body(endpoint, plan.payloads);
        let sent = start.elapsed();
        let t0 = Instant::now();
        let (status, bytes, attempts, retry_wait) = match plan.connection {
            Connection::Keepalive => {
                let c = match conn.take() {
                    Some(c) => Some(c),
                    None => Client::connect(target).ok(),
                };
                match c {
                    Some(mut c) => match c.request(method, path, body) {
                        Ok((status, text)) => {
                            // The server closes the socket on 503s and
                            // announces `Connection: close` when its
                            // per-connection request budget is spent;
                            // keep the socket only when it will answer
                            // again.
                            if status != 503 && !c.server_closed() {
                                conn = Some(c);
                            }
                            (status, text.len() as u64, 1, Duration::ZERO)
                        }
                        Err(_) => (0, 0, 1, Duration::ZERO),
                    },
                    None => (0, 0, 1, Duration::ZERO),
                }
            }
            Connection::Fresh => match fresh.request_traced(method, path, body) {
                Ok(o) => (o.status, o.body.len() as u64, o.attempts as u32, o.retry_wait),
                Err(_) => (0, 0, plan.max_attempts.max(1) as u32, Duration::ZERO),
            },
        };
        out.push(RequestRecord {
            seq: i,
            endpoint: endpoint.name(),
            sched_us: sched.as_micros() as u64,
            wait_us: sent.saturating_sub(sched).as_micros() as u64,
            latency_us: t0.elapsed().as_micros() as u64,
            status,
            bytes,
            attempts,
            retry_wait_us: retry_wait.as_micros() as u64,
        });
        i += workers as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A canned keep-alive HTTP responder: answers every request 200
    /// with a tiny body until `stop` flips.
    fn spawn_responder(stop: Arc<AtomicBool>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        std::thread::spawn(move || {
            let mut conns: Vec<std::net::TcpStream> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                if let Ok((c, _)) = listener.accept() {
                    c.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
                    conns.push(c);
                }
                conns.retain_mut(|c| {
                    let mut buf = [0u8; 65536];
                    match c.read(&mut buf) {
                        Ok(0) => false,
                        Ok(n) => {
                            // One response per request head seen; the
                            // test bodies are small enough that each
                            // read delivers whole requests.
                            let heads =
                                buf[..n].windows(4).filter(|w| w == b"\r\n\r\n").count().max(1);
                            for _ in 0..heads {
                                let _ =
                                    c.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok");
                            }
                            true
                        }
                        Err(_) => true,
                    }
                });
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        addr
    }

    fn v1_payloads() -> Payloads {
        Payloads {
            encode_path: "/v1/encode".to_string(),
            classify_path: "/v1/classify".to_string(),
            list_keys_path: "/v1/keys".to_string(),
            encode_body: "{}".to_string(),
            classify_body: "{}".to_string(),
        }
    }

    #[test]
    fn open_loop_keeps_schedule_against_a_fast_server() {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = spawn_responder(stop.clone());
        let payloads = v1_payloads();
        let mix = [MixEntry { endpoint: BenchEndpoint::ListKeys, weight: 1 }];
        let plan = StepPlan {
            targets: &[addr],
            rate: 200.0,
            duration: Duration::from_millis(500),
            concurrency: 2,
            connection: Connection::Keepalive,
            mix: &mix,
            payloads: &payloads,
            max_attempts: 1,
        };
        let t0 = Instant::now();
        let records = run_step(&plan);
        let elapsed = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        assert_eq!(records.len(), 100, "ceil(200 × 0.5s) ticks, none dropped");
        assert!(records.iter().all(|r| r.status == 200), "canned responder answers 200");
        assert!(records.iter().all(|r| r.endpoint == "list_keys"));
        // Tick order and schedule shape survive the worker split.
        assert!(records.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(records[0].sched_us, 0);
        assert_eq!(records[99].sched_us, 495_000);
        // Against a fast responder the run takes ~the configured
        // duration: the schedule, not the server, sets the pace.
        assert!(elapsed >= 0.49, "ran {elapsed}s; must not finish ahead of schedule");
        assert!(elapsed < 3.0, "ran {elapsed}s; fast server must not slow the schedule");
    }

    #[test]
    fn transport_failures_are_recorded_not_dropped() {
        // Bind then drop: connects fail fast with ECONNREFUSED.
        let addr = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
        let payloads = v1_payloads();
        let mix = [MixEntry { endpoint: BenchEndpoint::ListKeys, weight: 1 }];
        let plan = StepPlan {
            targets: &[addr],
            rate: 100.0,
            duration: Duration::from_millis(100),
            concurrency: 2,
            connection: Connection::Fresh,
            mix: &mix,
            payloads: &payloads,
            max_attempts: 1,
        };
        let records = run_step(&plan);
        assert_eq!(records.len(), 10);
        assert!(records.iter().all(|r| r.status == 0), "every tick records its failure");
    }

    #[test]
    fn endpoint_mix_is_deterministic_and_roughly_weighted() {
        let mix = [
            MixEntry { endpoint: BenchEndpoint::Encode, weight: 8 },
            MixEntry { endpoint: BenchEndpoint::Classify, weight: 1 },
            MixEntry { endpoint: BenchEndpoint::ListKeys, weight: 1 },
        ];
        let total = 10u64;
        let picks: Vec<BenchEndpoint> = (0..10_000).map(|i| endpoint_for(i, &mix, total)).collect();
        let again: Vec<BenchEndpoint> = (0..10_000).map(|i| endpoint_for(i, &mix, total)).collect();
        assert_eq!(picks, again, "same tick index → same endpoint");
        let encodes = picks.iter().filter(|&&e| e == BenchEndpoint::Encode).count();
        assert!((7_600..8_400).contains(&encodes), "~80% encode, got {encodes}/10000");
    }
}
