//! `ppdt-bencher` — open-loop load generation against the custodian
//! daemon, from a declarative experiment config.
//!
//! Two modes:
//!
//! * **Orchestrated** (`--ppdt PATH`): spawn the daemon(s) from the
//!   given `ppdt` binary (cluster size comes from the config's
//!   `nodes`), run the sweep, tear them down with SIGTERM.
//! * **Targeted** (`--target ADDR`, repeatable, or `targets` in the
//!   config): load an already-running daemon/cluster.
//!
//! Artifacts land in `--out-dir`: one `step_<k>_<rate>.csv` of
//! per-request records per rate step, plus `summary.json` with
//! per-step percentiles and the located overload knee. See
//! BENCHMARKS.md "Open-loop methodology" and
//! `scripts/bench_ingest.py` for what consumes them.
//!
//! Usage:
//! `ppdt-bencher --config CFG.json --out-dir DIR (--ppdt PATH | --target ADDR...)
//!    [--daemon-arg ARG...]`

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;

use ppdt_bencher::orchestrate::{run_sweep, spawn_cluster};
use ppdt_bencher::ExperimentConfig;

struct Opts {
    config: PathBuf,
    out_dir: PathBuf,
    ppdt: Option<PathBuf>,
    targets: Vec<SocketAddr>,
    daemon_args: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ppdt-bencher --config CFG.json --out-dir DIR \
         (--ppdt PATH | --target HOST:PORT...) [--daemon-arg ARG...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut config = None;
    let mut out_dir = None;
    let mut ppdt = None;
    let mut targets = Vec::new();
    let mut daemon_args = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => config = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--out-dir" => out_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--ppdt" => ppdt = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--target" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => targets.push(t),
                None => usage(),
            },
            "--daemon-arg" => daemon_args.push(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (Some(config), Some(out_dir)) = (config, out_dir) else { usage() };
    Opts { config, out_dir, ppdt, targets, daemon_args }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match std::fs::read_to_string(&opts.config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ppdt-bencher: read {}: {e}", opts.config.display());
            return ExitCode::FAILURE;
        }
    };
    let cfg = match ExperimentConfig::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ppdt-bencher: {}: {e}", opts.config.display());
            return ExitCode::FAILURE;
        }
    };

    // Resolve targets: explicit --target beats config targets beats
    // spawning our own cluster from --ppdt.
    let mut targets = opts.targets.clone();
    if targets.is_empty() {
        targets = cfg.targets.iter().map(|t| t.parse().expect("validated at parse")).collect();
    }
    let daemons = if targets.is_empty() {
        let Some(ppdt) = opts.ppdt.as_deref() else {
            eprintln!("ppdt-bencher: no targets: pass --target, config targets, or --ppdt");
            return ExitCode::FAILURE;
        };
        let scratch = opts.out_dir.join("keystores");
        match spawn_cluster(ppdt, &cfg, &scratch, &opts.daemon_args) {
            Ok(ds) => {
                targets = ds.iter().map(|d| d.addr).collect();
                eprintln!("ppdt-bencher: spawned {} daemon(s): {:?}", ds.len(), targets);
                ds
            }
            Err(e) => {
                eprintln!("ppdt-bencher: spawn daemons: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };

    let outcome = run_sweep(&cfg, &targets, &opts.out_dir);
    for d in daemons {
        if let Err(e) = d.stop() {
            eprintln!("ppdt-bencher: stop daemon: {e}");
        }
    }
    match outcome {
        Ok(o) => {
            match o.knee {
                Some(i) => println!(
                    "knee at step {i} ({} req/s offered): rejected={} p99={}us",
                    o.steps[i].offered_rate, o.steps[i].rejected, o.steps[i].p99_us
                ),
                None => println!("no knee within the swept rates"),
            }
            println!("summary: {}", o.summary_path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ppdt-bencher: sweep failed: {e}");
            ExitCode::FAILURE
        }
    }
}
