//! Per-rate-step summaries and the overload-knee finder.
//!
//! A sweep runs each offered rate for a fixed duration and reduces
//! the per-request records of each step to a [`StepSummary`]:
//! achieved vs offered rate, outcome counts, and latency percentiles
//! over the *successful* (2xx) requests, computed through the shared
//! [`ppdt_obs::LogHistogram`] so a step's percentiles carry the same
//! ≤ 1/64 relative-error bound `/metrics` has. Retry sleeps are
//! subtracted out ([`crate::RequestRecord::retry_wait_us`]) so a step
//! measures service latency, not client backoff policy.
//!
//! [`find_knee`] then walks the summaries in rate order and names the
//! **overload knee**: the first step where the daemon visibly stopped
//! keeping up — any 503s, or p99 degraded past [`KNEE_P99_FACTOR`] ×
//! the base (first) step's p99. That knee index is the headline of a
//! committed sweep (`BENCH_PR9.json`) and the number future serving
//! PRs are judged against.

use serde::{Deserialize, Serialize};

use crate::record::RequestRecord;

/// p99 degradation factor (vs the base step) that marks the knee even
/// before 503s appear.
pub const KNEE_P99_FACTOR: f64 = 5.0;

/// One rate step, reduced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepSummary {
    /// Offered rate, requests/second (the schedule).
    pub offered_rate: f64,
    /// Achieved send rate, requests/second (requests actually sent
    /// over the step's wall clock — lags offered when the generator
    /// itself cannot keep schedule).
    pub achieved_rate: f64,
    /// Step wall clock, seconds (last completion vs first schedule).
    pub duration_secs: f64,
    /// Requests scheduled (records written).
    pub requests: u64,
    /// 2xx answers.
    pub ok: u64,
    /// 503 answers (the daemon shedding load).
    pub rejected: u64,
    /// Requests with no HTTP answer at all (connect/read failures).
    pub transport_errors: u64,
    /// Non-503 HTTP errors.
    pub other_errors: u64,
    /// Median latency over 2xx requests, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// 99.9th percentile, µs.
    pub p999_us: u64,
    /// Slowest 2xx request, µs.
    pub max_us: u64,
    /// Mean 2xx latency, µs.
    pub mean_us: f64,
    /// Mean schedule slip at send time, µs — how late the generator
    /// fired ticks; large values mean the *offered* load itself was
    /// degraded and achieved_rate is the honest denominator.
    pub mean_wait_us: f64,
}

/// Reduces one step's records. `offered_rate` is the configured rate;
/// the achieved rate and percentiles come from the records.
pub fn summarize(offered_rate: f64, records: &[RequestRecord]) -> StepSummary {
    let mut hist = ppdt_obs::LogHistogram::new();
    let mut ok = 0u64;
    let mut rejected = 0u64;
    let mut transport = 0u64;
    let mut other = 0u64;
    let mut wait_sum = 0u128;
    let mut span_us = 0u64;
    for r in records {
        wait_sum += u128::from(r.wait_us);
        // The step spans first schedule to last completion.
        span_us = span_us.max(r.sched_us + r.wait_us + r.latency_us);
        if r.is_ok() {
            ok += 1;
            hist.record(r.latency_us.saturating_sub(r.retry_wait_us));
        } else if r.status == 503 {
            rejected += 1;
        } else if r.status == 0 {
            transport += 1;
        } else {
            other += 1;
        }
    }
    let n = records.len() as u64;
    let duration_secs = span_us as f64 / 1e6;
    StepSummary {
        offered_rate,
        achieved_rate: if duration_secs > 0.0 { n as f64 / duration_secs } else { 0.0 },
        duration_secs,
        requests: n,
        ok,
        rejected,
        transport_errors: transport,
        other_errors: other,
        p50_us: hist.quantile(0.50),
        p95_us: hist.quantile(0.95),
        p99_us: hist.quantile(0.99),
        p999_us: hist.quantile(0.999),
        max_us: hist.max(),
        mean_us: hist.mean(),
        mean_wait_us: if n > 0 { wait_sum as f64 / n as f64 } else { 0.0 },
    }
}

/// Index of the first step (ascending rate order) where overload is
/// visible: any 503s, or p99 above [`KNEE_P99_FACTOR`] × the base
/// step's p99 (the base step is the first one — the sweep's low-rate
/// anchor). `None` when every step stayed healthy.
pub fn find_knee(steps: &[StepSummary]) -> Option<usize> {
    let base_p99 = steps.first().map(|s| s.p99_us)?;
    steps.iter().position(|s| {
        s.rejected > 0 || (base_p99 > 0 && s.p99_us as f64 > KNEE_P99_FACTOR * base_p99 as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, sched_us: u64, latency_us: u64, status: u16) -> RequestRecord {
        RequestRecord {
            seq,
            endpoint: "encode",
            sched_us,
            wait_us: 0,
            latency_us,
            status,
            bytes: 10,
            attempts: 1,
            retry_wait_us: 0,
        }
    }

    #[test]
    fn summarize_counts_and_percentiles() {
        // 100 OK requests with latencies 1..=100ms spaced 10ms apart,
        // plus a 503, a transport error, and a 400.
        let mut records: Vec<RequestRecord> =
            (0..100).map(|i| rec(i, i * 10_000, (i + 1) * 1_000, 200)).collect();
        records.push(rec(100, 1_000_000, 10, 503));
        records.push(rec(101, 1_010_000, 0, 0));
        records.push(rec(102, 1_020_000, 10, 400));
        let s = summarize(100.0, &records);
        assert_eq!(
            (s.requests, s.ok, s.rejected, s.transport_errors, s.other_errors),
            (103, 100, 1, 1, 1)
        );
        // Exact sample p50 over 1..=100ms is 50ms; the histogram may
        // overshoot by ≤ 1/64.
        for (q, exact) in [(s.p50_us, 50_000u64), (s.p95_us, 95_000), (s.p99_us, 99_000)] {
            assert!(
                q >= exact && q as f64 <= exact as f64 * (1.0 + 1.0 / 64.0) + 1.0,
                "{q} vs exact {exact}"
            );
        }
        assert_eq!(s.max_us, 100_000);
        assert!(s.duration_secs > 1.0, "{}", s.duration_secs);
        assert!(s.achieved_rate > 0.0);
    }

    #[test]
    fn retry_wait_is_subtracted_from_service_latency() {
        let mut r = rec(0, 0, 2_500_000, 200);
        r.attempts = 2;
        r.retry_wait_us = 2_000_000;
        let s = summarize(1.0, &[r]);
        assert_eq!(s.p50_us, 500_000, "the Retry-After sleep must not count as latency");
    }

    fn step(offered: f64, rejected: u64, p99_us: u64) -> StepSummary {
        StepSummary {
            offered_rate: offered,
            achieved_rate: offered,
            duration_secs: 1.0,
            requests: 100,
            ok: 100 - rejected,
            rejected,
            transport_errors: 0,
            other_errors: 0,
            p50_us: p99_us / 2,
            p95_us: p99_us,
            p99_us,
            p999_us: p99_us,
            max_us: p99_us,
            mean_us: p99_us as f64 / 2.0,
            mean_wait_us: 0.0,
        }
    }

    #[test]
    fn knee_finds_first_503_or_p99_blowup() {
        // Healthy sweep: no knee.
        let healthy = vec![step(25.0, 0, 1000), step(50.0, 0, 1200), step(100.0, 0, 2000)];
        assert_eq!(find_knee(&healthy), None);
        // 503s mark the knee even with flat latency.
        let shed = vec![step(25.0, 0, 1000), step(50.0, 3, 1000), step(100.0, 40, 1000)];
        assert_eq!(find_knee(&shed), Some(1));
        // p99 blowup past 5× base marks it without any 503.
        let slow = vec![step(25.0, 0, 1000), step(50.0, 0, 4999), step(100.0, 0, 5001)];
        assert_eq!(find_knee(&slow), Some(2));
        // The base step itself can be the knee (saturated from go).
        let doomed = vec![step(25.0, 9, 1000)];
        assert_eq!(find_knee(&doomed), Some(0));
        assert_eq!(find_knee(&[]), None);
    }
}
