//! Property-based integration tests of the paper's guarantees, driven
//! by proptest over dataset shapes, strategies and tree parameters.

use ppdt::data::gen::{random_dataset, RandomDatasetConfig};
use ppdt::prelude::*;
use ppdt::transform::verify::all_class_strings_preserved;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn strategy_from(tag: u8, w: usize, min_len: usize) -> BreakpointStrategy {
    match tag % 3 {
        0 => BreakpointStrategy::None,
        1 => BreakpointStrategy::ChooseBP { w },
        _ => BreakpointStrategy::ChooseMaxMP { w, min_piece_len: min_len },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Theorem 2, fuzzed at the workspace level: for any dataset shape,
    /// breakpoint strategy and split criterion (monotone directions),
    /// the decoded tree equals the directly mined tree bit-exactly.
    #[test]
    fn no_outcome_change_holds(
        seed in 0u64..10_000,
        rows in 20usize..200,
        attrs in 1usize..4,
        classes in 2usize..4,
        range in 3u64..60,
        strat_tag in 0u8..3,
        w in 1usize..12,
        min_len in 1usize..4,
        gini in any::<bool>(),
        midpoint in any::<bool>(),
        min_leaf in 1u32..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomDatasetConfig {
            num_rows: rows,
            num_attrs: attrs,
            num_classes: classes,
            value_range: range,
        };
        let d = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig {
            strategy: strategy_from(strat_tag, w, min_len),
            ..Default::default()
        };
        let params = TreeParams {
            criterion: if gini { SplitCriterion::Gini } else { SplitCriterion::Entropy },
            threshold_policy: if midpoint { ThresholdPolicy::Midpoint } else { ThresholdPolicy::DataValue },
            min_samples_leaf: min_leaf,
            ..Default::default()
        };
        let (key, d2) = Encoder::new(config).encode(&mut rng, &d).expect("encode").into_parts();
        prop_assert!(all_class_strings_preserved(&d, &d2, &key));

        let builder = TreeBuilder::new(params);
        let t = builder.fit(&d);
        let t2 = builder.fit(&d2);
        let s = key.decode_tree(&t2, params.threshold_policy, &d).expect("decode tree");
        prop_assert!(
            trees_equal(&s, &t),
            "diff: {:?}",
            ppdt::tree::tree_diff(&s, &t, 0.0)
        );
    }

    /// Encode/decode round-trip over the whole active domain: exact
    /// for every value appearing in the data, for any strategy.
    #[test]
    fn value_roundtrip_exact(
        seed in 0u64..10_000,
        rows in 10usize..150,
        range in 2u64..80,
        strat_tag in 0u8..3,
        w in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomDatasetConfig {
            num_rows: rows,
            num_attrs: 2,
            num_classes: 2,
            value_range: range,
        };
        let d = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig {
            strategy: strategy_from(strat_tag, w, 1),
            anti_monotone_prob: 0.5, // round-trips hold either way
            ..Default::default()
        };
        let (key, _) = Encoder::new(config).encode(&mut rng, &d).expect("encode").into_parts();
        for a in d.schema().attrs() {
            for &x in &d.active_domain(a) {
                let y = key.encode_value(a, x).expect("in-domain value");
                prop_assert!(y.is_finite());
                prop_assert_eq!(key.decode_value(a, y).expect("decode"), x);
            }
        }
    }

    /// The transform is injective on each attribute's active domain
    /// (distinct originals get distinct encodings) and order across
    /// pieces respects the global direction.
    #[test]
    fn transform_injective_and_directed(
        seed in 0u64..10_000,
        rows in 10usize..150,
        range in 2u64..60,
        anti in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomDatasetConfig {
            num_rows: rows,
            num_attrs: 1,
            num_classes: 3,
            value_range: range,
        };
        let d = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig {
            anti_monotone_prob: if anti { 1.0 } else { 0.0 },
            ..Default::default()
        };
        let (key, _) = Encoder::new(config).encode(&mut rng, &d).expect("encode").into_parts();
        let a = AttrId(0);
        let tr = key.transform(a);
        prop_assert_eq!(tr.increasing, !anti);
        prop_assert_eq!(tr.validate(), Ok(()));

        // Across pieces (here: across any two values in different
        // pieces) the global direction must hold.
        let domain = d.active_domain(a);
        let encoded: Vec<f64> =
            domain.iter().map(|&x| tr.encode(x).expect("in-domain value")).collect();
        let mut sorted = encoded.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        prop_assert_eq!(sorted.len(), encoded.len(), "injectivity");
    }
}
