//! Cross-crate integration tests: the full custodian pipeline
//! (generate → encode → mine → decode → compare) across datasets,
//! strategies, criteria and threshold policies.

use ppdt::data::gen::{
    census_like, covertype_like, figure1, random_dataset, wdbc_like, CovertypeConfig,
    RandomDatasetConfig,
};
use ppdt::prelude::*;
use ppdt::transform::verify::all_class_strings_preserved;
use ppdt::transform::RetryPolicy;
use ppdt::tree::prune_pessimistic;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn strategies() -> [BreakpointStrategy; 3] {
    [
        BreakpointStrategy::None,
        BreakpointStrategy::ChooseBP { w: 10 },
        BreakpointStrategy::ChooseMaxMP { w: 10, min_piece_len: 2 },
    ]
}

#[test]
fn pipeline_exact_on_every_generator() {
    let mut rng = StdRng::seed_from_u64(1);
    let datasets = [
        figure1(),
        census_like(&mut rng, 800),
        wdbc_like(&mut rng, 400),
        covertype_like(&mut rng, &CovertypeConfig { num_rows: 2_000, ..Default::default() }),
    ];
    for (i, d) in datasets.iter().enumerate() {
        for strategy in strategies() {
            for criterion in [SplitCriterion::Gini, SplitCriterion::Entropy] {
                let config = EncodeConfig { strategy, ..Default::default() };
                let params = TreeParams { criterion, min_samples_leaf: 2, ..Default::default() };
                let (key, d2) =
                    Encoder::new(config).encode(&mut rng, d).expect("encode").into_parts();
                assert!(all_class_strings_preserved(d, &d2, &key), "ds {i} {strategy:?}");
                let builder = TreeBuilder::new(params);
                let t = builder.fit(d);
                let t2 = builder.fit(&d2);
                let s = key.decode_tree(&t2, params.threshold_policy, d).expect("decode");
                assert!(
                    trees_equal(&s, &t),
                    "ds {i} {strategy:?} {criterion:?}: {:?}",
                    ppdt::tree::tree_diff(&s, &t, 0.0)
                );
                // Structure statistics agree by construction.
                assert_eq!(t.num_leaves(), t2.num_leaves());
                assert_eq!(t.depth(), t2.depth());
            }
        }
    }
}

#[test]
fn midpoint_policy_pipeline_exact() {
    let mut rng = StdRng::seed_from_u64(2);
    let d = census_like(&mut rng, 600);
    let params = TreeParams {
        threshold_policy: ThresholdPolicy::Midpoint,
        min_samples_leaf: 3,
        ..Default::default()
    };
    for strategy in strategies() {
        let config = EncodeConfig { strategy, ..Default::default() };
        let (key, d2) = Encoder::new(config).encode(&mut rng, &d).expect("encode").into_parts();
        let builder = TreeBuilder::new(params);
        let t = builder.fit(&d);
        let t2 = builder.fit(&d2);
        let s = key.decode_tree(&t2, ThresholdPolicy::Midpoint, &d).expect("decode");
        assert!(trees_equal(&s, &t), "{strategy:?}: {:?}", ppdt::tree::tree_diff(&s, &t, 0.0));
    }
}

#[test]
fn pruning_commutes_with_decoding() {
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = RandomDatasetConfig { num_rows: 400, num_attrs: 3, num_classes: 2, value_range: 40 };
    for _ in 0..5 {
        let d = random_dataset(&mut rng, &cfg);
        let (key, d2) = Encoder::new(EncodeConfig::default())
            .encode(&mut rng, &d)
            .expect("encode")
            .into_parts();
        let builder = TreeBuilder::default();
        // prune(decode(T')) == prune(T): pruning is count-based.
        let pruned_direct = prune_pessimistic(&builder.fit(&d), 0.25);
        let pruned_decoded = prune_pessimistic(
            &key.decode_tree(&builder.fit(&d2), ThresholdPolicy::DataValue, &d).expect("decode"),
            0.25,
        );
        assert!(trees_equal(&pruned_direct, &pruned_decoded));
    }
}

#[test]
fn verified_encode_with_anti_monotone_directions() {
    let mut rng = StdRng::seed_from_u64(4);
    let d = wdbc_like(&mut rng, 300);
    let config = EncodeConfig { anti_monotone_prob: 1.0, ..Default::default() };
    let params = TreeParams::default();
    let encoded = Encoder::new(config)
        .retry(RetryPolicy::failing(8))
        .verify_with(params)
        .encode(&mut rng, &d)
        .expect("verified encode");
    let (key, d2, attempts) = (encoded.key, encoded.dataset, encoded.attempts);
    assert!(attempts >= 1);
    let builder = TreeBuilder::new(params);
    let s = key.decode_tree(&builder.fit(&d2), params.threshold_policy, &d).expect("decode");
    assert!(trees_equal(&s, &builder.fit(&d)));
}

#[test]
fn key_survives_json_roundtrip_and_still_decodes() {
    let mut rng = StdRng::seed_from_u64(5);
    let d = census_like(&mut rng, 500);
    let (key, d2) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    let json = serde_json::to_string(&key).expect("serialize key");
    let key2: TransformKey = serde_json::from_str(&json).expect("deserialize key");
    assert_eq!(key, key2);
    let builder = TreeBuilder::default();
    let t2 = builder.fit(&d2);
    let s = key2.decode_tree(&t2, ThresholdPolicy::DataValue, &d).expect("decode");
    assert!(trees_equal(&s, &builder.fit(&d)));
}

#[test]
fn predictions_through_the_key_match_on_unseen_tuples() {
    // The decoded tree and the mined tree agree on arbitrary inputs
    // when the input is encoded first: predict_T'(f(x)) == predict_S(x).
    let mut rng = StdRng::seed_from_u64(6);
    let d = census_like(&mut rng, 700);
    let (key, d2) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    let builder = TreeBuilder::default();
    let t2 = builder.fit(&d2);
    let s = key.decode_tree(&t2, ThresholdPolicy::DataValue, &d).expect("decode");
    // Use the training tuples themselves as the "query" set (their
    // encodings are defined; arbitrary reals would not be, because
    // permutation pieces are defined on the active domain only).
    let mut enc = vec![0.0; d.num_attrs()];
    let mut raw = vec![0.0; d.num_attrs()];
    for row in 0..d.num_rows() {
        for a in d.schema().attrs() {
            raw[a.index()] = d.value(row, a);
            enc[a.index()] = d2.value(row, a);
        }
        assert_eq!(t2.predict(&enc), s.predict(&raw), "row {row}");
    }
}

#[test]
fn feature_importance_is_invariant_under_the_transform() {
    // Importance is a pure function of the tree's class histograms, so
    // the custodian's analyst sees identical scores whether computed
    // on the decoded tree or the directly mined one — and even the
    // *mined* (still encoded) tree agrees, since decoding changes only
    // threshold values.
    use ppdt::tree::feature_importance;
    let mut rng = StdRng::seed_from_u64(8);
    let d = census_like(&mut rng, 1_000);
    let (key, d2) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    let builder = TreeBuilder::default();
    let t = builder.fit(&d);
    let t2 = builder.fit(&d2);
    let s = key.decode_tree(&t2, ThresholdPolicy::DataValue, &d).expect("decode");
    let m = d.num_attrs();
    assert_eq!(feature_importance(&t, m), feature_importance(&s, m));
    assert_eq!(feature_importance(&t, m), feature_importance(&t2, m));
}

#[test]
fn every_single_value_is_transformed() {
    // Section 1's contrast with perturbation: the transformation
    // changes every value.
    let mut rng = StdRng::seed_from_u64(7);
    let d = covertype_like(&mut rng, &CovertypeConfig { num_rows: 1_500, ..Default::default() });
    let (_, d2) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    for a in d.schema().attrs() {
        let same = d.column(a).iter().zip(d2.column(a)).filter(|(x, y)| x == y).count();
        assert_eq!(same, 0, "attr {a}: {same} values unchanged");
    }
}
