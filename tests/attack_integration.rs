//! Integration tests on the attack/risk side: the qualitative claims
//! of Section 6 must hold on freshly generated data.

use ppdt::attack::SortingMapping;
use ppdt::data::gen::{covertype_like, CovertypeConfig};
use ppdt::data::AttrId;
use ppdt::prelude::*;
use ppdt::risk::{
    run_trials, sorting_risk_trial_with, subspace_risk_trial, subspace_risk_trial_with,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn covertype(rows: usize, seed: u64) -> ppdt::data::Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    covertype_like(&mut rng, &CovertypeConfig { num_rows: rows, ..Default::default() })
}

#[test]
fn dense_attribute_fully_cracked_by_sorting_worst_case() {
    // Attribute 2: no discontinuities, no monochromatic values —
    // Figure 11 reports a 100% worst-case sorting crack.
    let d = covertype(8_000, 11);
    let cfg = EncodeConfig::default();
    let risk = run_trials(9, 1, |rng| {
        sorting_risk_trial_with(rng, &d, AttrId(1), &cfg, 0.02, 1.0, SortingMapping::Consecutive)
            .expect("trial")
    });
    assert!(risk.median > 0.95, "attr 2 sorting risk {:.3}", risk.median);
}

#[test]
fn discontinuities_defeat_consecutive_sorting() {
    // Attribute 4: 847 discontinuities — Figure 11 reports ~4%.
    let d = covertype(8_000, 12);
    let cfg = EncodeConfig::default();
    let risk = run_trials(9, 2, |rng| {
        sorting_risk_trial_with(rng, &d, AttrId(3), &cfg, 0.02, 1.0, SortingMapping::Consecutive)
            .expect("trial")
    });
    assert!(risk.median < 0.25, "attr 4 sorting risk {:.3}", risk.median);
}

#[test]
fn proportional_sorting_is_strictly_stronger_on_discontinuous_attrs() {
    // The extension finding: the proportional rank map self-corrects
    // for evenly spread discontinuities, so the "safe" attribute 4
    // collapses under it.
    let d = covertype(8_000, 13);
    let cfg = EncodeConfig::default();
    let cons = run_trials(9, 3, |rng| {
        sorting_risk_trial_with(rng, &d, AttrId(3), &cfg, 0.02, 1.0, SortingMapping::Consecutive)
            .expect("trial")
    });
    let prop = run_trials(9, 3, |rng| {
        sorting_risk_trial_with(rng, &d, AttrId(3), &cfg, 0.02, 1.0, SortingMapping::Proportional)
            .expect("trial")
    });
    assert!(
        prop.median > cons.median + 0.3,
        "proportional {:.3} should dwarf consecutive {:.3}",
        prop.median,
        cons.median
    );
}

#[test]
fn subspace_association_risk_decreases_with_size() {
    let d = covertype(6_000, 14);
    let cfg = EncodeConfig::default();
    let scenario = DomainScenario::polyline(HackerProfile::Expert);
    let avg = |ids: &[usize], seed: u64| {
        let attrs: Vec<AttrId> = ids.iter().map(|&i| AttrId(i)).collect();
        run_trials(9, seed, |rng| {
            subspace_risk_trial(rng, &d, &attrs, &cfg, &scenario).expect("trial")
        })
        .median
    };
    let single = avg(&[6], 4);
    let pair = avg(&[6, 9], 5);
    let triple = avg(&[3, 6, 9], 6);
    assert!(single >= pair, "{single:.3} vs {pair:.3}");
    assert!(pair >= triple, "{pair:.3} vs {triple:.3}");
}

#[test]
fn association_with_best_attack_still_below_product_bound() {
    // Section 6.3's observation: risk(A,B) < risk(A) * risk(B) would
    // hold under independence; in practice association skew drives it
    // even lower. We check the weaker, reliable direction:
    // joint risk <= min(risk(A), risk(B)).
    let d = covertype(6_000, 15);
    let cfg = EncodeConfig::default();
    let scenario = DomainScenario::polyline(HackerProfile::Expert);
    // Medians over *independent* randomized encodes, so allow noise
    // slack on top of the per-trial inequality.
    let joint = run_trials(15, 7, |rng| {
        subspace_risk_trial_with(rng, &d, &[AttrId(1), AttrId(9)], &cfg, &scenario, true, 1.0)
            .expect("trial")
    })
    .median;
    let single2 = run_trials(15, 8, |rng| {
        subspace_risk_trial_with(rng, &d, &[AttrId(1)], &cfg, &scenario, true, 1.0).expect("trial")
    })
    .median;
    let single10 = run_trials(15, 9, |rng| {
        subspace_risk_trial_with(rng, &d, &[AttrId(9)], &cfg, &scenario, true, 1.0).expect("trial")
    })
    .median;
    assert!(joint <= single2.min(single10) + 0.08, "{joint:.3} vs {single2:.3}/{single10:.3}");
}

#[test]
fn knowledge_is_power_for_the_hacker() {
    // Monotone relationship between prior knowledge and domain risk,
    // averaged over attributes.
    let d = covertype(6_000, 16);
    let cfg = EncodeConfig::default();
    let risk_for = |profile: HackerProfile, seed: u64| {
        let mut total = 0.0;
        for a in [0usize, 4, 8] {
            let scenario = DomainScenario::polyline(profile);
            total += run_trials(9, seed + a as u64, |rng| {
                ppdt::risk::domain_risk_trial(rng, &d, AttrId(a), &cfg, &scenario).expect("trial")
            })
            .median;
        }
        total / 3.0
    };
    let ignorant = risk_for(HackerProfile::Ignorant, 100);
    let knowledgeable = risk_for(HackerProfile::Knowledgeable, 200);
    let insider = risk_for(HackerProfile::Insider, 300);
    assert!(ignorant < 0.10, "ignorant {ignorant:.3}");
    assert!(ignorant <= knowledgeable + 0.02);
    assert!(knowledgeable <= insider + 0.05, "{knowledgeable:.3} vs {insider:.3}");
}
