//! Offline subset of `serde_derive`, written against `proc_macro`
//! directly (no `syn`/`quote` — they are not available in this
//! network-restricted build environment).
//!
//! Supported input shapes — everything this workspace derives on:
//!
//! * structs with named fields, tuple structs (a 1-field tuple struct
//!   serializes as its inner value, matching upstream newtype-struct
//!   behaviour), and unit structs;
//! * enums with unit, tuple, and struct variants using serde's
//!   externally tagged representation;
//! * the container attribute `#[serde(transparent)]`.
//!
//! Not supported (none are used in this workspace): generic types,
//! lifetimes, `where` clauses, field-level serde attributes, and
//! function-pointer field types (whose `->` would confuse the
//! angle-bracket depth tracking in the type skipper).
//!
//! The generated impls target the vendored `serde` shim's value-tree
//! model: `Serialize::to_value` / `Deserialize::from_value`.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input).parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ----------------------------------------------------------- parsing

struct Input {
    name: String,
    kind: Kind,
    transparent: bool,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Container attributes (doc comments arrive as `#[doc = "..."]`).
    while is_punct(tokens.get(i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            transparent |= attr_is_serde_transparent(g);
            i += 2;
        } else {
            i += 1;
        }
    }

    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if is_punct(tokens.get(i), '<') {
        panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Input { name, kind, transparent }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while is_punct(tokens.get(*i), '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if is_ident(tokens.get(*i), "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn attr_is_serde_transparent(g: &Group) -> bool {
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "transparent"))
        }
        _ => false,
    }
}

fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        if !is_punct(toks.get(i), ':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(name);
    }
    fields
}

/// Advances past a type, stopping after the field-separating comma (or
/// at end of stream). Commas inside `<...>` belong to the type; commas
/// inside parenthesised groups are invisible at this token depth.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(fg)) if fg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(fg))
            }
            Some(TokenTree::Group(fg)) if fg.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(fg))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while i < toks.len() && !is_punct(toks.get(i), ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// ----------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) if input.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),")
                        }
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![\
                             ({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 ({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![\
                                 ({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) if input.transparent && fields.len() == 1 => {
            let f = &fields[0];
            format!("Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})")
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field_from_object(obj, {f:?})?"))
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"{name}: expected object, found {{}}\", v.kind())))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?")).collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"{name}: expected array, found {{}}\", v.kind())))?;\n\
                 if arr.len() != {n} {{\n\
                     return Err(::serde::DeError::custom(format!(\
                         \"{name}: expected {n} elements, found {{}}\", arr.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!(
            "match v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 other => Err(::serde::DeError::custom(\
                     format!(\"{name}: expected null, found {{}}\", other.kind()))),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let arr = inner.as_array().ok_or_else(|| \
                                         ::serde::DeError::custom(format!(\
                                         \"{name}::{vn}: expected array, found {{}}\", inner.kind())))?;\n\
                                     if arr.len() != {n} {{\n\
                                         return Err(::serde::DeError::custom(format!(\
                                             \"{name}::{vn}: expected {n} elements, found {{}}\", arr.len())));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field_from_object(obj, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let obj = inner.as_object().ok_or_else(|| \
                                         ::serde::DeError::custom(format!(\
                                         \"{name}::{vn}: expected object, found {{}}\", inner.kind())))?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::DeError::custom(format!(\
                             \"{name}: unknown variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::custom(format!(\
                                 \"{name}: unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::custom(format!(\
                         \"{name}: invalid enum representation ({{}})\", other.kind()))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
