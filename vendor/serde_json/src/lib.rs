//! Offline, API-compatible subset of `serde_json` over the vendored
//! `serde` shim's [`serde::Value`] tree.
//!
//! Provides [`to_string`], [`to_string_pretty`] (2-space indent, like
//! upstream), and [`from_str`]. Floats print via Rust's `{:?}`
//! formatting, which is shortest-round-trip — the behaviour the
//! upstream `float_roundtrip` feature guarantees — and non-finite
//! floats serialize as `null` (upstream behaviour). Integral numbers
//! parse back as integers so `u64` seeds survive a round trip exactly.
//!
//! See `vendor/README.md` for the vendoring policy.

#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convenience alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into `T`. Rejects trailing non-whitespace.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::new)
}

// ---------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-round-trip and keeps a `.0` on
                // integral values, matching upstream serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require a following \uXXXX.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Array(vec![Value::Float(0.5), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":7,"b":[0.5,null],"c":"x\"y\n"}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_keep_point_and_roundtrip() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let x: f64 = from_str("1e-3").unwrap();
        assert_eq!(x, 1e-3);
    }

    #[test]
    fn u64_seed_exact() {
        let seed = u64::MAX - 1;
        let s = to_string(&seed).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not a key").is_err());
        assert!(from_str::<Value>("{\"a\":1} trailing").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é 😀""#).unwrap();
        assert_eq!(s, "é 😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        let t: String = from_str("\"\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(t, "é 😀");
    }
}
