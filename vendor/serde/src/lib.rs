//! Offline, API-compatible subset of `serde`.
//!
//! Upstream serde's visitor-based architecture exists to decouple data
//! formats from data structures with zero intermediate allocation. The
//! only format this workspace uses is JSON (via the vendored
//! `serde_json` shim), so this shim collapses the architecture into a
//! single self-describing [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (from the vendored
//!   `serde_derive` proc macro) generates both for structs and enums
//!   using serde's **externally tagged** enum representation and
//!   supports `#[serde(transparent)]`, so the JSON this produces is
//!   byte-compatible with what upstream serde_json would produce for
//!   the types in this workspace.
//!
//! See `vendor/README.md` for the vendoring policy.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the shim's entire data model.
///
/// Integers keep their signedness ([`Value::Int`] vs [`Value::UInt`])
/// so `u64` seeds round-trip exactly; floats are stored as `f64`.
/// Equality compares `Int`/`UInt` numerically (like upstream
/// `serde_json::Value`, where `json!(7i64) == json!(7u64)`).
#[derive(Clone, Debug)]
pub enum Value {
    /// Null / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value does not fit `i64` or
    /// originates from an unsigned type).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key–value map (preserves field order for stable JSON).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => u64::try_from(*a).is_ok_and(|a| a == *b),
            (Float(a), Float(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            _ => false,
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the shim's [`Value`] data model.
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses a value; errors carry a human-readable path-free message.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up struct field `name` in `obj`; a missing field
/// deserializes from [`Value::Null`] (so `Option` fields default to
/// `None`, like upstream serde) and otherwise reports a missing-field
/// error. Used by the derive macro.
pub fn field_from_object<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

// ------------------------------------------------------------ impls

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => f as i64,
                    ref other => {
                        return Err(DeError(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| DeError::custom("negative integer for unsigned type"))?,
                    Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => f as u64,
                    ref other => {
                        return Err(DeError(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                // Upstream serde_json turns non-finite floats into null.
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| {
                    DeError(format!("expected number, found {}", v.kind()))
                })
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s =
            v.as_str().ok_or_else(|| DeError(format!("expected string, found {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+) => $len:literal),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| {
                    DeError(format!("expected array, found {}", v.kind()))
                })?;
                if a.len() != $len {
                    return Err(DeError(format!(
                        "expected array of length {}, found {}", $len, a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
ser_de_tuple!(
    (0 A) => 1,
    (0 A, 1 B) => 2,
    (0 A, 1 B, 2 C) => 3,
    (0 A, 1 B, 2 C, 3 D) => 4
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError(format!("expected object, found {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort the keys.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError(format!("expected object, found {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError(format!("expected null, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_and_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn integer_width_checks() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&Value::Int(i64::MIN)).unwrap(), i64::MIN);
    }

    #[test]
    fn float_accepts_integers() {
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
        assert_eq!(f64::from_value(&Value::Float(0.5)).unwrap(), 0.5);
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (1.5f64, 2u32).to_value();
        let t: (f64, u32) = Deserialize::from_value(&v).unwrap();
        assert_eq!(t, (1.5, 2));
    }

    #[test]
    fn field_lookup_missing_reports_name() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        let err = field_from_object::<u32>(&obj, "b").unwrap_err();
        assert!(err.0.contains("missing field `b`"), "{err}");
        let opt: Option<u32> = field_from_object(&obj, "b").unwrap();
        assert_eq!(opt, None);
    }
}
