//! Offline, API-compatible subset of `crossbeam`: only
//! [`thread::scope`], which this workspace uses for fan-out over OS
//! threads. Implemented on top of `std::thread::scope` (stable since
//! Rust 1.63), which provides the same borrow-checked structured
//! concurrency crossbeam pioneered. See `vendor/README.md`.

#![warn(missing_docs)]

/// Scoped threads in the `crossbeam::thread` API shape.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope for spawning borrowing threads; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joins to a
    /// [`std::thread::Result`], like crossbeam's `ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning `Err` if it
        /// panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so
        /// it can spawn further threads, matching crossbeam's
        /// signature (callers that don't nest write `|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle { inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })) }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. Returns `Err` with the panic payload if the
    /// closure itself panics (spawned-thread panics surface through
    /// each handle's [`ScopedJoinHandle::join`], and an unjoined
    /// panicked thread also fails the scope, as in crossbeam).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn closure_panic_is_caught() {
        let r = crate::thread::scope(|_| panic!("boom"));
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let r = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
