//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the benchmark-definition surface this workspace uses
//! (groups, [`BenchmarkId`], [`Throughput`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], the `criterion_group!` /
//! `criterion_main!` macros) over a deliberately simple runner: each
//! benchmark warms up once, then times `sample_size` batched samples
//! and prints min / median / mean wall-clock per iteration (plus
//! throughput when configured). No statistical analysis, outlier
//! detection, HTML reports, or baseline comparison — for those, run
//! with real criterion outside the sandbox. When invoked by
//! `cargo test` (which passes `--test` to `harness = false` bench
//! targets), each benchmark body executes exactly once as a smoke
//! test. See `vendor/README.md`.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered via `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A parameterised id, printed as `name/parameter`.
    pub fn new<S: Into<String>, P: fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    /// An id carrying only a parameter (upstream API parity).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { name: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, parameter: None }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

/// Work-per-iteration declaration, used to print throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times a single benchmark body.
pub struct Bencher {
    samples: u64,
    /// Per-iteration durations of each timed sample.
    sample_times: Vec<Duration>,
}

impl Bencher {
    /// Calls `f` once to warm up, then times `samples` further calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        self.sample_times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.sample_times.push(start.elapsed());
        }
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs `harness = false` bench targets with
        // `--test`; real benchmark runs come from `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and
/// throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut b = Bencher { samples, sample_times: Vec::new() };
        f(&mut b);
        self.report(&id, &b.sample_times);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream writes reports here; the shim prints
    /// per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, times: &[Duration]) {
        if times.is_empty() {
            return;
        }
        let mut sorted: Vec<Duration> = times.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let label =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{id}", self.name) };
        let mut line = format!(
            "{label:<50} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({} samples)",
            sorted.len()
        );
        if let Some(tp) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  {:.3} Melem/s", n as f64 / secs / 1e6));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(
                            "  {:.3} MiB/s",
                            n as f64 / secs / (1 << 20) as f64
                        ));
                    }
                }
            }
        }
        println!("{line}");
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with", 7), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        // warmup + one timed sample in test mode
        assert_eq!(calls, 2);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("fit", "spline").to_string(), "fit/spline");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }
}
