//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` header), `x in range`
//! parameter strategies over integer and float ranges, tuple
//! strategies, [`strategy::any`]`::<bool>()`, [`collection::vec`],
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics with the generated inputs
//!   visible via the assertion message rather than a minimized one;
//! * the RNG stream is deterministic per test (seeded from the test's
//!   module path and name), so failures reproduce exactly on re-run;
//! * `prop_assume!` discards the case without counting it toward
//!   `ProptestConfig::cases`, like upstream, with a global rejection
//!   cap to guarantee termination.
//!
//! See `vendor/README.md` for the vendoring policy.

#![warn(missing_docs)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    use std::hash::{Hash, Hasher};

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of upstream's `ProptestConfig`: only `cases` is
    /// honoured; the struct keeps the `..Default::default()` update
    /// syntax working.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-discarded) cases to run per test.
        pub cases: u32,
        /// Cap on total generated cases including discarded ones.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_global_rejects: 65_536 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's full path so
    /// every run of a given test replays the same case sequence.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for the named test.
        pub fn deterministic(test_path: &str) -> Self {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_path.hash(&mut h);
            TestRng { rng: StdRng::seed_from_u64(h.finish()) }
        }

        /// Builds the RNG for one case from its persisted seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { rng: StdRng::seed_from_u64(seed) }
        }

        /// Draws the next case seed from this (master) stream.
        pub fn next_case_seed(&mut self) -> u64 {
            use rand::Rng;
            self.rng.gen()
        }
    }
}

/// Regression-seed persistence: failing case seeds are written to
/// `proptest-regressions/<module__test>.txt` (one `cc <seed>` line per
/// case, mirroring upstream's `cc <hex>` format) and replayed before
/// any novel cases on subsequent runs.
pub mod regression {
    use std::io::Write;
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past.
# It is automatically read, and these particular cases re-run before
# any novel cases are generated. Commit this file so regressions stay
# pinned for everyone. Format: one `cc <u64 seed>` per line.
";

    /// Path of the regression file for a test, under the crate's
    /// manifest directory (pass `env!("CARGO_MANIFEST_DIR")`).
    pub fn file_for(manifest_dir: &str, test_path: &str) -> PathBuf {
        Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{}.txt", test_path.replace("::", "__")))
    }

    /// Loads the persisted seeds for a test; missing file means none.
    pub fn load(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|l| l.trim().strip_prefix("cc "))
            .filter_map(|s| s.trim().parse().ok())
            .collect()
    }

    /// Appends `seed` to the regression file (creating it, with a
    /// header, if needed), unless it is already present.
    pub fn persist(path: &Path, seed: u64) {
        if load(path).contains(&seed) {
            return;
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let fresh = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            return;
        };
        if fresh {
            let _ = f.write_all(HEADER.as_bytes());
        }
        let _ = writeln!(f, "cc {seed}");
    }

    /// Armed while a case runs; if the case panics, the seed is
    /// persisted on unwind so the next run replays it first.
    pub struct PersistOnPanic {
        /// Regression file of the owning test.
        pub path: PathBuf,
        /// Seed of the in-flight case.
        pub seed: u64,
    }

    impl Drop for PersistOnPanic {
        fn drop(&mut self) {
            if std::thread::panicking() {
                persist(&self.path, self.seed);
                eprintln!(
                    "proptest shim: persisted failing seed {} to {}",
                    self.seed,
                    self.path.display()
                );
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// Generates values of an output type from an RNG stream.
    ///
    /// Upstream proptest's `Strategy` produces shrinkable value trees;
    /// this shim generates plain values (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

    /// Always produces a clone of the given value (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.gen()
        }
    }

    macro_rules! arbitrary_full_range {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng.gen()
                }
            }
        )*};
    }
    arbitrary_full_range!(u8, u16, u32, u64, i8, i16, i32, i64);

    /// Strategy form of [`Arbitrary`]; built by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` — e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with a length drawn from a range; built by
    /// [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: each case draws a length in `len`, then that
    /// many elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { .. }`
/// item becomes a plain test function that loops over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            let __reg_path =
                $crate::regression::file_for(env!("CARGO_MANIFEST_DIR"), __test_path);
            let __persisted = $crate::regression::load(&__reg_path);
            let mut __master = $crate::test_runner::TestRng::deterministic(__test_path);
            let mut __accepted: u32 = 0;
            let mut __generated: u32 = 0;
            let mut __case: usize = 0;
            // Persisted regression seeds replay first, then the
            // deterministic sweep runs its full budget of novel cases.
            while __case < __persisted.len() || __accepted < __config.cases {
                let __replaying = __case < __persisted.len();
                let __seed = if __replaying {
                    __persisted[__case]
                } else {
                    __generated += 1;
                    assert!(
                        __generated <= __config.max_global_rejects,
                        "proptest shim: too many cases discarded by prop_assume! in `{}`",
                        stringify!($name),
                    );
                    __master.next_case_seed()
                };
                __case += 1;
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                // Dropped on unwind: a panicking case writes its seed
                // to the regression file before the test dies.
                let __guard = $crate::regression::PersistOnPanic {
                    path: __reg_path.clone(),
                    seed: __seed,
                };
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // A `prop_assume!` failure in the body `continue`s past
                // this bookkeeping, so discarded cases don't count.
                $body
                ::core::mem::forget(__guard);
                if !__replaying {
                    __accepted += 1;
                }
            }
        }
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics like `assert!`;
/// no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Discards the current case (without counting it) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in -2.5f64..2.5, n in 1usize..9) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn assume_discards_without_hanging(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x = {}", x);
        }
    }

    proptest! {
        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0.0f64..1.0, 0u8..4), 2..12),
            flag in any::<bool>(),
        ) {
            prop_assert!((2..12).contains(&v.len()));
            for (f, u) in &v {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!(*u < 4);
            }
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        // Has a committed regression file (proptest-regressions/) whose
        // seeds replay before the sweep; all must pass.
        #[test]
        fn replayed_regression_seeds_pass(x in 0u64..1_000_000, y in 0.0f64..1.0) {
            prop_assert!(x < 1_000_000);
            prop_assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn regression_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("ppdt_proptest_{}", std::process::id()));
        let path = crate::regression::file_for(dir.to_str().unwrap(), "a::b::c");
        assert!(path.ends_with("proptest-regressions/a__b__c.txt"));
        assert_eq!(crate::regression::load(&path), Vec::<u64>::new());
        crate::regression::persist(&path, 7);
        crate::regression::persist(&path, 99);
        crate::regression::persist(&path, 7); // deduped
        assert_eq!(crate::regression::load(&path), vec![7, 99]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"), "header missing:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_on_panic_guard_is_inert_without_panic() {
        let dir = std::env::temp_dir().join(format!("ppdt_proptest_g_{}", std::process::id()));
        let path = crate::regression::file_for(dir.to_str().unwrap(), "t::guard");
        {
            let _guard = crate::regression::PersistOnPanic { path: path.clone(), seed: 5 };
        }
        assert!(!path.exists(), "guard must not write unless panicking");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_rng_replays() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        let a: Vec<u64> = (0..16).map(|_| s.generate(&mut r1)).collect();
        let b: Vec<u64> = (0..16).map(|_| s.generate(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
