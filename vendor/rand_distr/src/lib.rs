//! Offline, API-compatible subset of the `rand_distr` crate: only the
//! [`Normal`] distribution, which is all this workspace uses. See
//! `vendor/README.md` for why this exists.

#![warn(missing_docs)]

use std::fmt;

pub use rand::distributions::Distribution;
use rand::distributions::Standard;
use rand::Rng;

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid normal-distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
///
/// Sampling uses the Box–Muller transform (two uniforms per draw, no
/// cached spare), so the draw sequence is a pure function of the RNG
/// stream — the determinism contract the generators rely on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Constructs `N(mean, std_dev²)`. Errors when `std_dev` is
    /// negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0, 1], u2 in [0, 1). Sampled through
        // `Standard` directly because `Rng::gen` needs `Self: Sized`.
        let u1 = 1.0 - Distribution::<f64>::sample(&Standard, &mut *rng);
        let u2 = Distribution::<f64>::sample(&Standard, rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(3.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn zero_sd_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }
}
