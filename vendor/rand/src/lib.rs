//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! This repository must build in network-restricted sandboxes where
//! crates.io is unreachable, so the workspace vendors a small shim that
//! covers exactly the surface the codebase uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with `gen`, `gen_range`
//!   (half-open and inclusive, integer and float), `gen_bool`, `fill`,
//!   and `sample`;
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256**; **not** bit-compatible with upstream `rand`'s
//!   ChaCha12-based `StdRng`, but every bit as deterministic);
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`;
//! * [`distributions::{Distribution, Standard, Uniform}`].
//!
//! Determinism is the only contract the workspace relies on: the same
//! seed always produces the same stream on every platform.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open `a..b` or
    /// inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        distributions::unit_f64(self) < p
    }

    /// Samples a value from `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs
    /// the generator — the workspace's canonical way to derive
    /// reproducible streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: usize = rng.gen_range(0..17);
            assert!(y < 17);
            let z: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
            let w: f64 = rng.gen_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
