//! Distributions: the [`Distribution`] trait, [`Standard`], and the
//! uniform-range machinery backing `Rng::gen_range`.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of a type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

/// `[0, 1)` with 53 random mantissa bits.
#[inline]
pub(crate) fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {
        $(impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        })*
    };
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from ranges.

    use super::unit_f64;
    use crate::Rng;

    /// A range that `Rng::gen_range` can sample from.
    ///
    /// Implemented once, generically, for `Range<T>` and
    /// `RangeInclusive<T>` over every [`SampleUniform`] element type —
    /// mirroring upstream's impl structure so type inference can flow
    /// from the range literal to the sampled value.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Element types uniform ranges can produce.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Uniform draw from the half-open `[lo, hi)`.
        fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw from the closed `[lo, hi]`.
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty range");
            T::sample_inclusive(rng, lo, hi)
        }
    }

    /// Unbiased-enough uniform integer in `[0, span)` via the
    /// widening multiply-shift (Lemire). `span > 0`.
    #[inline]
    fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! uniform_int {
        ($($t:ty : $u:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    lo.wrapping_add(below(rng, span) as $t)
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    uniform_int!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                 i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    let u = unit_f64(rng) as $t;
                    let v = lo + (hi - lo) * u;
                    // Guard the open upper bound against rounding.
                    if v >= hi {
                        <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON)
                    } else {
                        v
                    }
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    // Closed interval: scale by 1 / (2^53 - 1).
                    let u = ((rng.next_u64() >> 11) as f64
                        / ((1u64 << 53) - 1) as f64) as $t;
                    (lo + (hi - lo) * u).clamp(lo, hi)
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    /// Minimal `Uniform` distribution for API parity.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f64> {
        /// Uniform over the half-open `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Uniform { low, high }
        }
    }

    impl super::Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (self.low..self.high).sample_single(rng)
        }
    }
}

pub use uniform::Uniform;
