//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256\*\*
/// (Blackman & Vigna). Small state, excellent statistical quality,
/// and — the property everything here depends on — identical output
/// for identical seeds on every platform.
///
/// Not bit-compatible with upstream `rand`'s ChaCha12-based `StdRng`;
/// see `vendor/README.md`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        StdRng { s }
    }
}

/// Alias kept for API parity with upstream `rand`.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }
}
