//! Sequence utilities: shuffling and choosing.

use crate::distributions::uniform::SampleRange;
use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // `gen_range` needs `Self: Sized`, so sample the range
        // directly — same code path, works for unsized `R`.
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(&mut *rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(12);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
        assert_eq!(*[42].choose(&mut rng).unwrap(), 42);
    }
}
