//! # ppdt — Preservation of Patterns and Input–Output Privacy
//!
//! A Rust implementation of the ICDE 2007 paper *"Preservation Of
//! Patterns and Input-Output Privacy"* (Bu, Lakshmanan, Ng, Ramesh):
//! **piecewise (anti-)monotone data transformations** that let a data
//! custodian outsource decision-tree mining with
//!
//! 1. a **no-outcome-change guarantee** — the tree mined on the
//!    transformed data decodes *exactly* to the tree mined on the
//!    original data,
//! 2. **input privacy** — transformed values resist domain and
//!    subspace-association attacks, and
//! 3. **output privacy** — the mined tree's thresholds are encoded,
//!    so its paths resist reconstruction.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`data`] (`ppdt-data`) — datasets, class strings, monochromatic
//!   analysis, synthetic generators,
//! * [`tree`] (`ppdt-tree`) — the decision-tree learner and decoder,
//! * [`transform`] (`ppdt-transform`) — the piecewise transformation
//!   framework and the custodian's key,
//! * [`attack`] (`ppdt-attack`) — curve-fitting / sorting /
//!   combination attacks,
//! * [`risk`] (`ppdt-risk`) — disclosure-risk metrics and the trial
//!   harness,
//! * [`obs`] (`ppdt-obs`) — opt-in phase timers and pipeline counters
//!   (see `BENCHMARKS.md` for the metric catalogue).
//!
//! ## Quickstart
//!
//! ```
//! use ppdt::prelude::*;
//! use rand::SeedableRng;
//!
//! // The custodian owns a training table D.
//! let d = ppdt::data::gen::figure1();
//!
//! // 1. Encode: every attribute gets its own piecewise transform.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let (key, d_prime) =
//!     Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).unwrap().into_parts();
//!
//! // 2. The (untrusted) miner builds a tree on D'.
//! let t_prime = TreeBuilder::default().fit(&d_prime);
//!
//! // 3. The custodian decodes the thresholds with the key...
//! let s = key.decode_tree(&t_prime, ThresholdPolicy::DataValue, &d).unwrap();
//!
//! // ...and gets *exactly* the tree that mining D directly yields.
//! let t = TreeBuilder::default().fit(&d);
//! assert!(trees_equal(&s, &t));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ppdt_attack as attack;
pub use ppdt_bayes as bayes;
pub use ppdt_data as data;
pub use ppdt_obs as obs;
pub use ppdt_risk as risk;
pub use ppdt_svm as svm;
pub use ppdt_transform as transform;
pub use ppdt_tree as tree;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use ppdt_attack::{FitMethod, HackerProfile};
    pub use ppdt_data::{AttrId, ClassId, Dataset, DatasetBuilder, Schema};
    pub use ppdt_risk::{domain_risk_trial, run_trials, DomainScenario};
    pub use ppdt_transform::{
        BreakpointStrategy, CompiledKey, EncodeConfig, Encoded, Encoder, FnFamily, RekeyPlan,
        TransformKey,
    };
    pub use ppdt_tree::{
        trees_equal, DecisionTree, SplitCriterion, ThresholdPolicy, TreeBuilder, TreeParams,
    };
}
