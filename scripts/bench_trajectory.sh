#!/usr/bin/env bash
# Regenerates the committed mining benchmark trajectory
# (BENCH_PR3.json) via the `mining_speed` binary. See BENCHMARKS.md
# "Trajectory" for the schema and the regression gate
# (scripts/bench_compare.py).
#
# Usage: scripts/bench_trajectory.sh [--smoke] [--out PATH]
#
#   --smoke   tiny datasets / single repetition (CI wiring check;
#             numbers are not comparable to a full run)
#   --out     report path (default: BENCH_PR3.json at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_PR3.json"
smoke=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=(--smoke); shift ;;
    --out) out="${2:?--out needs a path}"; shift 2 ;;
    *) echo "unknown argument $1; usage: $0 [--smoke] [--out PATH]" >&2; exit 2 ;;
  esac
done

cargo build --release -q -p ppdt-bench --bin mining_speed
./target/release/mining_speed "${smoke[@]}" --json "$out"
echo "trajectory written to $out"
