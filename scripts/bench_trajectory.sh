#!/usr/bin/env bash
# Regenerates the committed benchmark reports: the mining trajectory
# (BENCH_PR3.json, via `mining_speed`, which now also times the
# interpreted-vs-compiled encode hot path) and the custodian-daemon
# throughput report (BENCH_PR6.json, via `serve_throughput`:
# cold-vs-warm caches plus fresh-vs-keep-alive connection regimes and
# a chunked streaming leg; BENCH_PR5.json is the frozen pre-keep-alive
# PR 5 run, BENCH_PR4.json the pre-cache PR 4 run). See BENCHMARKS.md
# for the schemas and the regression gates (scripts/bench_compare.py,
# including --warm-ratio and --keepalive-ratio).
#
# Usage: scripts/bench_trajectory.sh [--smoke] [--out PATH]
#                                    [--serve-out PATH] [--no-serve]
#
#   --smoke      tiny datasets / single repetition (CI wiring check;
#                numbers are not comparable to a full run)
#   --out        mining trajectory path (default: BENCH_PR3.json)
#   --serve-out  serve throughput path (default: BENCH_PR6.json)
#   --no-serve   skip the serve_throughput scenario
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_PR3.json"
serve_out="BENCH_PR6.json"
serve=1
smoke=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=(--smoke); shift ;;
    --out) out="${2:?--out needs a path}"; shift 2 ;;
    --serve-out) serve_out="${2:?--serve-out needs a path}"; shift 2 ;;
    --no-serve) serve=0; shift ;;
    *) echo "unknown argument $1; usage: $0 [--smoke] [--out PATH] [--serve-out PATH] [--no-serve]" >&2; exit 2 ;;
  esac
done

cargo build --release -q -p ppdt-bench --bin mining_speed --bin serve_throughput
./target/release/mining_speed "${smoke[@]}" --json "$out"
echo "trajectory written to $out"

if [[ "$serve" -eq 1 ]]; then
  ./target/release/serve_throughput "${smoke[@]}" --json "$serve_out"
  echo "serve throughput written to $serve_out"
fi
