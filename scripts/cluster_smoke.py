#!/usr/bin/env python3
"""End-to-end smoke test of the `ppdt serve` custodian cluster.

Starts THREE `ppdt serve` daemons peered at each other, then over real
loopback HTTP:

1. writes a key to one node only
2. proves all three converge — identical `/v1/peer/keys` manifests and
   byte-identical envelope files in all three keystore directories
3. SIGKILLs one node mid-traffic while a client drives encodes per the
   documented retry policy (connection errors fail over to the next
   node after a short backoff; a 503 sleeps its `Retry-After`), and
   asserts ZERO lost and ZERO wrong answers
4. asserts the dead peer shows `reachable: false` in both survivors'
   `/healthz` within one sync interval (generous wall-clock slack)
5. writes a second key to a survivor and proves the remaining pair
   still replicates, byte-identically
6. SIGTERMs the survivors; both must drain and exit 0

Usage: cluster_smoke.py PPDT_BINARY

Run from the repo root by scripts/check.sh; exits nonzero on any
failure.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

TIMEOUT = 10           # seconds, per HTTP call and per daemon wait
SYNC_INTERVAL_MS = 300
CONVERGE_DEADLINE = 30  # seconds for cluster-wide convergence
N_REQUESTS = 30        # traffic volume around the SIGKILL
KILL_AFTER = 10        # SIGKILL the third node after this many answers


def http(method, url, body=None):
    """Returns (status, parsed-JSON body, headers). HTTP error statuses
    are returned, not raised; connection errors propagate."""
    data = body.encode() if isinstance(body, str) else body
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=TIMEOUT) as resp:
            return resp.status, json.loads(resp.read().decode()), resp.headers
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode()), err.headers


def resilient_post(addrs, start, path, payload):
    """One logical request under the documented client retry policy
    (PROTOCOL.md "Backpressure"/"Clustering"): a connection error
    rotates to the next node after a short backoff, a 503 sleeps the
    server's Retry-After first. Returns (status, body) or None when
    the attempt budget is exhausted (a LOST request)."""
    backoff = 0.05
    for attempt in range(12):
        addr = addrs[(start + attempt) % len(addrs)]
        try:
            status, body, headers = http(
                "POST", f"http://{addr}{path}", payload)
        except (urllib.error.URLError, ConnectionError, socket.timeout, OSError):
            time.sleep(backoff)
            backoff = min(backoff * 2, 2.0)
            continue
        if status == 503:
            retry_after = float(headers.get("retry-after") or backoff)
            time.sleep(min(retry_after, 2.0))
            continue
        return status, body
    return None


def write_training_csv(path, rows=80):
    """Deterministic two-attribute relation with a threshold label."""
    with open(path, "w") as fh:
        fh.write("age,balance,label\n")
        for i in range(rows):
            age = 20 + (i * 7) % 50
            balance = 100 + (i * 131) % 4000
            label = "yes" if age < 45 and balance > 1500 else "no"
            fh.write(f"{age},{balance},{label}\n")


def pick_ports(n):
    """Reserves n distinct loopback ports (bind, record, release)."""
    socks, ports = [], []
    for _ in range(n):
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        socks.append(s)
        ports.append(s.getsockname()[1])
    for s in socks:
        s.close()
    return ports


class Cluster:
    """The three daemons plus enough state to diagnose a failure."""

    def __init__(self, ppdt, tmp, ports):
        self.addrs = [f"127.0.0.1:{p}" for p in ports]
        self.dirs = [os.path.join(tmp, f"keys{i}") for i in range(len(ports))]
        self.procs = []
        for i, addr in enumerate(self.addrs):
            peers = [a for a in self.addrs if a != addr]
            cmd = [ppdt, "serve", "--addr", addr,
                   "--keystore-dir", self.dirs[i], "--metrics",
                   "--sync-interval-ms", str(SYNC_INTERVAL_MS)]
            for peer in peers:
                cmd += ["--peer", peer]
            self.procs.append(subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True))
        for i, proc in enumerate(self.procs):
            line = proc.stdout.readline()
            if "listening on" not in line:
                self.fail(f"node {i} unexpected startup line: {line!r}")

    def fail(self, msg):
        outputs = []
        for i, proc in enumerate(self.procs):
            if proc.poll() is None:
                proc.kill()
            try:
                out, _ = proc.communicate(timeout=TIMEOUT)
            except (subprocess.TimeoutExpired, ValueError):
                out = "<unavailable>"
            outputs.append(f"--- node {i} ({self.addrs[i]}) ---\n{out}")
        sys.exit(f"cluster_smoke FAILED: {msg}\n" + "\n".join(outputs))

    def manifest(self, i):
        _, body, _ = http("GET", f"http://{self.addrs[i]}/v1/peer/keys")
        return body["keys"]

    def healthz(self, i):
        _, body, _ = http("GET", f"http://{self.addrs[i]}/healthz")
        return body

    def wait_converged(self, nodes, want_ids):
        """Polls until every node in `nodes` serves an identical
        manifest covering `want_ids`; returns that manifest."""
        deadline = time.monotonic() + CONVERGE_DEADLINE
        while time.monotonic() < deadline:
            try:
                manifests = [self.manifest(i) for i in nodes]
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.05)
                continue
            ids = {e["key_id"] for e in manifests[0]}
            if want_ids <= ids and all(m == manifests[0] for m in manifests):
                return manifests[0]
            time.sleep(0.05)
        self.fail(f"nodes {nodes} did not converge on {want_ids} within "
                  f"{CONVERGE_DEADLINE}s")

    def assert_identical_envelopes(self, nodes, key_ids):
        for key_id in key_ids:
            blobs = set()
            for i in nodes:
                with open(os.path.join(self.dirs[i], f"{key_id}.json"),
                          "rb") as fh:
                    blobs.add(fh.read())
            if len(blobs) != 1:
                self.fail(f"envelope {key_id} differs across nodes {nodes}")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    ppdt = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="ppdt-cluster-smoke-") as tmp:
        # Two keys minted with the CLI itself (the second arrives after
        # the SIGKILL, to prove the surviving pair still replicates).
        csv = os.path.join(tmp, "d.csv")
        write_training_csv(csv)
        keys = []
        for seed in (7, 11):
            key_path = os.path.join(tmp, f"key{seed}.json")
            subprocess.run([ppdt, "encode", csv,
                            "--out", os.path.join(tmp, f"dp{seed}.csv"),
                            "--key", key_path, "--seed", str(seed)],
                           check=True, timeout=60)
            with open(key_path) as fh:
                keys.append(json.load(fh))

        cluster = Cluster(ppdt, tmp, pick_ports(3))
        addrs = cluster.addrs

        # 1. One key, written to node 0 only.
        status, body, _ = http("POST", f"http://{addrs[0]}/v1/keys",
                               json.dumps({"key": keys[0]}))
        if status != 201:
            cluster.fail(f"store key on node 0: {status} {body}")
        key_id = body["key_id"]

        # 2. All three nodes converge: identical manifests (digest
        # equality is byte-identity — envelopes serialize
        # deterministically) and identical envelope files on disk.
        cluster.wait_converged([0, 1, 2], {key_id})
        cluster.assert_identical_envelopes([0, 1, 2], [key_id])
        print(f"cluster_smoke: 3 nodes converged on {key_id}")

        # Expected encode answer, fixed before any failure.
        with open(csv) as fh:
            plain = fh.read()
        payload = json.dumps({"key_id": key_id, "csv": plain, "rows": None})
        status, body, _ = http("POST", f"http://{addrs[0]}/v1/encode", payload)
        if status != 200:
            cluster.fail(f"baseline encode: {status} {body}")
        expected_csv = body["csv"]

        # 3. Drive traffic round-robin; SIGKILL node 2 partway through.
        killed = None
        t_kill = None
        for i in range(N_REQUESTS):
            if i == KILL_AFTER:
                killed = 2
                cluster.procs[killed].send_signal(signal.SIGKILL)
                t_kill = time.monotonic()
            answer = resilient_post(addrs, i, "/v1/encode", payload)
            if answer is None:
                cluster.fail(f"request {i}: LOST (retry budget exhausted)")
            status, body = answer
            if status != 200:
                cluster.fail(f"request {i}: status {status}: {body}")
            if body["csv"] != expected_csv:
                cluster.fail(f"request {i}: WRONG answer")
        cluster.procs[killed].wait(timeout=TIMEOUT)
        print(f"cluster_smoke: {N_REQUESTS} requests around a SIGKILL, "
              f"0 lost, 0 wrong")

        # 4. Both survivors report the dead peer within a sync
        # interval of noticing (generous wall-clock bound for CI).
        survivors = [0, 1]
        dead_addr = addrs[killed]
        detect_deadline = t_kill + max(10.0, 20 * SYNC_INTERVAL_MS / 1000)
        pending = set(survivors)
        while pending:
            if time.monotonic() > detect_deadline:
                cluster.fail(f"nodes {sorted(pending)} never reported "
                             f"{dead_addr} unreachable")
            for i in list(pending):
                peers = {p["addr"]: p for p in cluster.healthz(i)["peers"]}
                dead = peers.get(dead_addr)
                if dead and not dead["reachable"] \
                        and dead["consecutive_failures"] >= 1:
                    pending.discard(i)
            time.sleep(0.05)
        print(f"cluster_smoke: survivors saw the dead peer in "
              f"{time.monotonic() - t_kill:.2f}s "
              f"(sync interval {SYNC_INTERVAL_MS}ms)")

        # 5. The surviving pair still replicates: a key written to
        # node 1 shows up on node 0, byte-identically.
        status, body, _ = http("POST", f"http://{addrs[1]}/v1/keys",
                               json.dumps({"key": keys[1]}))
        if status != 201:
            cluster.fail(f"store key on node 1: {status} {body}")
        key_id2 = body["key_id"]
        cluster.wait_converged(survivors, {key_id, key_id2})
        cluster.assert_identical_envelopes(survivors, [key_id, key_id2])

        # 5b. Tenancy: the unit of replication is the (tenant, key)
        # pair. A key stored under /v2/t/acme/ on one survivor must
        # land under t/acme/ on the other — never in the flat default
        # namespace — and the replica must be byte-identical.
        status, body, _ = http("POST", f"http://{addrs[1]}/v2/t/acme/keys",
                               json.dumps({"key": keys[0]}))
        if status != 201 or body.get("tenant") != "acme":
            cluster.fail(f"tenant store on node 1: {status} {body}")
        deadline = time.monotonic() + CONVERGE_DEADLINE
        while True:
            m0 = cluster.manifest(0)
            has_acme = any(e.get("tenant") == "acme" and e["key_id"] == key_id
                           for e in m0)
            if has_acme and cluster.manifest(1) == m0:
                break
            if time.monotonic() > deadline:
                cluster.fail(f"acme key never replicated to node 0: {m0}")
            time.sleep(0.05)
        blobs = set()
        for i in survivors:
            path = os.path.join(cluster.dirs[i], "t", "acme",
                                f"{key_id}.json")
            if not os.path.exists(path):
                cluster.fail(f"node {i}: tenant envelope missing at {path}")
            with open(path, "rb") as fh:
                blobs.add(fh.read())
        if len(blobs) != 1:
            cluster.fail("acme envelope differs across the survivors")
        status, body, _ = http("GET", f"http://{addrs[0]}/v2/t/acme/keys")
        if status != 200 \
                or [k["key_id"] for k in body["keys"]] != [key_id]:
            cluster.fail(f"replica's acme listing wrong: {status} {body}")
        print("cluster_smoke: acme-tenant key replicated into the same "
              "tenant, byte-identically")

        # The sync machinery is visible in the survivors' metrics.
        _, metrics, _ = http("GET", f"http://{addrs[0]}/metrics")
        counters = {c["name"]: c["value"]
                    for c in metrics["process"]["counters"]}
        for name in ("peer_sync_rounds", "peer_unreachable"):
            if counters.get(name, 0) < 1:
                cluster.fail(f"/metrics counter {name} flat: {counters}")

        # 6. Graceful shutdown of the survivors.
        for i in survivors:
            cluster.procs[i].send_signal(signal.SIGTERM)
        for i in survivors:
            try:
                code = cluster.procs[i].wait(timeout=TIMEOUT)
            except subprocess.TimeoutExpired:
                cluster.fail(f"node {i} did not drain after SIGTERM")
            if code != 0:
                cluster.fail(f"node {i} SIGTERM exit code {code!r}")

    print("cluster_smoke passed: 3-node convergence, byte-identical "
          "envelopes, SIGKILL with zero lost/wrong answers, dead-peer "
          "health reporting, survivor replication, tenant-scoped "
          "replication, graceful SIGTERM")


if __name__ == "__main__":
    main()
