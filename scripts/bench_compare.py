#!/usr/bin/env python3
"""Compare two mining-trajectory reports (see scripts/bench_trajectory.sh).

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.10]
    bench_compare.py --self-check

Exits nonzero when any timing shared by both reports regressed by more
than the tolerance (candidate slower than baseline * (1 + tolerance)).
Timings are matched on (dataset, builder, threads); cases or thread
counts present in only one report are listed but not gated, so the
trajectory can grow new shapes without breaking old baselines.

``--self-check`` verifies the gate itself: a report compared against
itself must pass, and a synthetic 20%-regressed copy must fail.
"""

import copy
import json
import sys


def load(path):
    with open(path) as fh:
        report = json.load(fh)
    if report.get("trajectory_schema_version") != 1:
        sys.exit(f"{path}: unsupported trajectory_schema_version "
                 f"{report.get('trajectory_schema_version')!r}")
    return report


def timing_map(report):
    """{(dataset, builder, threads): millis} over all cases."""
    out = {}
    for case in report["cases"]:
        for t in case["timings"]:
            out[(case["dataset"], t["builder"], t["threads"])] = t["millis"]
    return out


def compare(baseline, candidate, tolerance):
    """Returns a list of human-readable regression strings."""
    base = timing_map(baseline)
    cand = timing_map(candidate)
    regressions = []
    for key in sorted(base.keys() & cand.keys()):
        b, c = base[key], cand[key]
        if c > b * (1.0 + tolerance):
            dataset, builder, threads = key
            regressions.append(
                f"{dataset} {builder} threads={threads}: "
                f"{b:.2f} ms -> {c:.2f} ms (+{100.0 * (c / b - 1.0):.1f}%)")
    for key in sorted(base.keys() ^ cand.keys()):
        side = "baseline" if key in base else "candidate"
        print(f"note: {key} only in {side}; not gated")
    return regressions


def self_check():
    report = {
        "trajectory_schema_version": 1,
        "cases": [{
            "dataset": "synthetic@1",
            "timings": [
                {"builder": "recursive", "threads": 1, "millis": 100.0},
                {"builder": "presorted", "threads": 2, "millis": 40.0},
            ],
        }],
    }
    if compare(report, report, 0.10):
        sys.exit("self-check FAILED: identical reports flagged a regression")
    slow = copy.deepcopy(report)
    for t in slow["cases"][0]["timings"]:
        t["millis"] *= 1.20
    if not compare(report, slow, 0.10):
        sys.exit("self-check FAILED: 20% regression not flagged at 10% tolerance")
    print("self-check passed: identity clean, 20% regression flagged")


def main(argv):
    if argv == ["--self-check"]:
        self_check()
        return
    tolerance = 0.10
    if "--tolerance" in argv:
        i = argv.index("--tolerance")
        tolerance = float(argv[i + 1])
        del argv[i:i + 2]
    if len(argv) != 2:
        sys.exit(__doc__.strip())
    baseline, candidate = load(argv[0]), load(argv[1])
    regressions = compare(baseline, candidate, tolerance)
    if regressions:
        print(f"REGRESSIONS (> {100 * tolerance:.0f}% over baseline):")
        for r in regressions:
            print(f"  {r}")
        sys.exit(1)
    print(f"ok: no timing regressed more than {100 * tolerance:.0f}%")


if __name__ == "__main__":
    main(sys.argv[1:])
