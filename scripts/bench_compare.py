#!/usr/bin/env python3
"""Compare two benchmark reports and gate on regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.10]
    bench_compare.py --warm-ratio 1.5 REPORT.json
    bench_compare.py --keepalive-ratio 1.3 REPORT.json
    bench_compare.py --min-ratio FAST_over_SLOW:R REPORT.json
    bench_compare.py --require-knee REPORT.json
    bench_compare.py --self-check

Three report shapes are understood, detected from the file contents:

* **trajectory** reports (``trajectory_schema_version: 1``, written by
  ``mining_speed`` via scripts/bench_trajectory.sh): timings matched on
  (dataset, builder, threads); a timing regresses when the candidate is
  slower than ``baseline * (1 + tolerance)``.
* **BenchReport** (``schema_version: 2`` with ``headlines``, written by
  e.g. ``serve_throughput``): headlines matched on name. Only
  ``*_per_sec`` headlines are gated — higher is better, so a headline
  regresses when the candidate falls below
  ``baseline * (1 - tolerance)``. Other headlines (configuration echoes
  like client counts) are informational.
* **open-loop sweeps** (``openloop_schema_version: 1``, written by
  ``ppdt-bencher`` / scripts/bench_ingest.py): rate steps matched on
  offered_rate. On shared *healthy* steps (no 503s on either side),
  ``achieved_rate`` is gated higher-is-better and ``p99_us``
  lower-is-better; overloaded steps are latency-chaotic by design and
  are reported but not gated.

Both reports must be the same shape; mixing them is an error. Cases or
headlines present in only one report are listed but not gated, so
reports can grow new shapes without breaking old baselines.

``--warm-ratio R REPORT.json`` gates a single BenchReport on its
cold-vs-warm headline pairs: for every ``*_warm_*_per_sec`` headline
with a ``*_cold_*_per_sec`` sibling (same name with ``_warm_``
swapped for ``_cold_``), the warm value must be at least ``R`` times
the cold value. A report with no such pairs is an error — the gate
must never pass vacuously.

``--keepalive-ratio R REPORT.json`` is the same pair gate over the
connection regimes: every ``*_keepalive_*_per_sec`` headline with a
``*_fresh_*_per_sec`` sibling must be at least ``R`` times its
fresh-connection counterpart.

``--min-ratio FAST_over_SLOW:R REPORT.json`` gates a single
*trajectory* report on builder pairs: the spec splits once on
``_over_`` into two builder names, and in every case timing both
builders (matched on threads) the ``FAST`` builder must be at least
``R`` times quicker than ``SLOW`` — e.g.
``encode_compiled_batched_over_encode_compiled_per_value:2.5`` pins the
batched encode engine's speedup over the per-value compiled baseline.
A report with no such pair is an error — the gate must never pass
vacuously.

``--require-knee REPORT.json`` gates a single open-loop sweep on
having actually found its saturation knee: the report's ``knee`` must
be present, in range, and re-derivable from the recorded steps (the
knee step shed load, or its p99 exceeds 5x the base step's p99). A
sweep that never saturated the server fails — it measured nothing
about capacity.

A BenchReport that claims cluster mode (any positive ``*peers``
headline) must also embed the four ``peer_*`` sync counters in
``metrics.counters``; loading one without them is an error, so a
peer-aware gate can never pass vacuously against a report that
silently dropped the counters.

``--self-check`` verifies the gate itself in all modes: a report
compared against itself must pass, a synthetic 20%-regressed copy
must fail, the warm-ratio gate must accept/reject synthetic
cold/warm pairs on the right side of the threshold, and the
cluster-mode counter requirement must discriminate.
"""

import copy
import json
import sys


PEER_COUNTERS = ("peer_sync_rounds", "peer_keys_fetched",
                 "peer_fetch_failures", "peer_unreachable")


def cluster_counter_failures(report):
    """A cluster-mode BenchReport (any positive ``*peers`` headline)
    must embed the peer sync counters in ``metrics.counters`` —
    otherwise every peer-related comparison downstream would pass
    vacuously against an empty set. Standalone reports (no peers
    headline, or peers = 0) are exempt."""
    peers = sum(h["value"] for h in report.get("headlines", [])
                if h["name"].endswith("peers"))
    if peers <= 0:
        return []
    names = {c["name"] for c in report.get("metrics", {}).get("counters", [])}
    return [f"cluster-mode report (peers={peers:.0f}) is missing process "
            f"counter {name}; peer gates would pass vacuously"
            for name in PEER_COUNTERS if name not in names]


def load(path):
    with open(path) as fh:
        report = json.load(fh)
    if report.get("trajectory_schema_version") == 1:
        return "trajectory", report
    if report.get("schema_version") == 2 and "headlines" in report:
        missing = cluster_counter_failures(report)
        if missing:
            sys.exit(f"{path}: " + "; ".join(missing))
        return "bench_report", report
    if report.get("openloop_schema_version") == 1:
        if not report.get("steps"):
            sys.exit(f"{path}: open-loop report has no rate steps")
        return "openloop", report
    sys.exit(f"{path}: unrecognised report shape (expected "
             f"trajectory_schema_version=1, schema_version=2 with headlines, "
             f"or openloop_schema_version=1)")


def timing_map(report):
    """{(dataset, builder, threads): millis} over all cases."""
    out = {}
    for case in report["cases"]:
        for t in case["timings"]:
            out[(case["dataset"], t["builder"], t["threads"])] = t["millis"]
    return out


def headline_map(report):
    """{name: value} over the gated (``*_per_sec``) headlines."""
    return {h["name"]: h["value"] for h in report["headlines"]
            if h["name"].endswith("_per_sec")}


def note_unshared(base, cand):
    for key in sorted(base.keys() ^ cand.keys()):
        side = "baseline" if key in base else "candidate"
        print(f"note: {key} only in {side}; not gated")


def compare(baseline, candidate, tolerance):
    """Lower-is-better timing compare; returns regression strings."""
    base = timing_map(baseline)
    cand = timing_map(candidate)
    regressions = []
    for key in sorted(base.keys() & cand.keys()):
        b, c = base[key], cand[key]
        if c > b * (1.0 + tolerance):
            dataset, builder, threads = key
            regressions.append(
                f"{dataset} {builder} threads={threads}: "
                f"{b:.2f} ms -> {c:.2f} ms (+{100.0 * (c / b - 1.0):.1f}%)")
    note_unshared(base, cand)
    return regressions


def compare_headlines(baseline, candidate, tolerance):
    """Higher-is-better throughput compare; returns regression strings."""
    base = headline_map(baseline)
    cand = headline_map(candidate)
    regressions = []
    for name in sorted(base.keys() & cand.keys()):
        b, c = base[name], cand[name]
        if b > 0 and c < b * (1.0 - tolerance):
            regressions.append(
                f"{name}: {b:.0f} -> {c:.0f} (-{100.0 * (1.0 - c / b):.1f}%)")
    note_unshared(base, cand)
    return regressions


def openloop_step_map(report):
    """{offered_rate: step} over all rate steps of an open-loop sweep."""
    return {s["offered_rate"]: s for s in report["steps"]}


def compare_openloop(baseline, candidate, tolerance):
    """Open-loop sweep compare on shared healthy steps; regressions.

    A step is *healthy* when neither side shed load (rejected == 0) and
    both saw successful requests. On healthy steps ``achieved_rate`` is
    higher-is-better and ``p99_us`` lower-is-better. Overloaded steps
    are latency-chaotic by construction (the whole point of the sweep is
    to find them), so they are noted but not gated."""
    base = openloop_step_map(baseline)
    cand = openloop_step_map(candidate)
    regressions = []
    for rate in sorted(base.keys() & cand.keys()):
        b, c = base[rate], cand[rate]
        if b["rejected"] > 0 or c["rejected"] > 0 or not (b["ok"] and c["ok"]):
            print(f"note: rate {rate:g} overloaded or empty on one side; "
                  f"not gated")
            continue
        if c["achieved_rate"] < b["achieved_rate"] * (1.0 - tolerance):
            regressions.append(
                f"rate {rate:g} achieved_rate: {b['achieved_rate']:.1f} -> "
                f"{c['achieved_rate']:.1f} "
                f"(-{100.0 * (1.0 - c['achieved_rate'] / b['achieved_rate']):.1f}%)")
        if b["p99_us"] > 0 and c["p99_us"] > b["p99_us"] * (1.0 + tolerance):
            regressions.append(
                f"rate {rate:g} p99: {b['p99_us']} us -> {c['p99_us']} us "
                f"(+{100.0 * (c['p99_us'] / b['p99_us'] - 1.0):.1f}%)")
    note_unshared(base, cand)
    return regressions


def knee_failures(report):
    """An open-loop sweep submitted to the knee gate must have found a
    saturation knee, and the knee's claim must be re-derivable from the
    steps themselves (503s appeared, or p99 blew past 5x the base
    step's p99). Returns failure strings."""
    steps = report.get("steps", [])
    if not steps:
        return ["no rate steps recorded"]
    knee = report.get("knee")
    if not knee:
        return ["no knee identified: every offered rate was absorbed; "
                "extend the sweep to higher rates"]
    idx = knee.get("index", -1)
    if not 0 <= idx < len(steps):
        return [f"knee index {idx} out of range for {len(steps)} steps"]
    step = steps[idx]
    base_p99 = steps[0]["p99_us"]
    shed = step["rejected"] > 0
    blown = base_p99 > 0 and step["p99_us"] > 5.0 * base_p99
    if not (shed or blown):
        return [f"knee at rate {step['offered_rate']:g} is not supported by "
                f"its step: rejected={step['rejected']}, "
                f"p99={step['p99_us']} us vs base p99={base_p99} us"]
    return []


def gate_require_knee(path):
    kind, report = load(path)
    if kind != "openloop":
        sys.exit(f"{path}: --require-knee needs an open-loop sweep, "
                 f"got {kind}")
    failures = knee_failures(report)
    if failures:
        print("KNEE GATE FAILURES:")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    knee = report["knee"]
    step = report["steps"][knee["index"]]
    print(f"ok: knee at step {knee['index']} "
          f"(offered {step['offered_rate']:g}/s, rejected {step['rejected']}, "
          f"p99 {step['p99_us']} us) out of {len(report['steps'])} steps")


def ratio_pair_failures(report, ratio, hi_token, lo_token):
    """Paired-headline ratio check: every ``*{hi_token}*_per_sec``
    headline with a ``*{lo_token}*_per_sec`` sibling must be at least
    ``ratio`` times it. Returns (pairs_seen, failure strings)."""
    headlines = {h["name"]: h["value"] for h in report["headlines"]}
    pairs = 0
    failures = []
    for name in sorted(headlines):
        if hi_token not in name or not name.endswith("_per_sec"):
            continue
        lo_name = name.replace(hi_token, lo_token)
        if lo_name not in headlines:
            continue
        pairs += 1
        hi, lo = headlines[name], headlines[lo_name]
        achieved = hi / lo if lo > 0 else float("inf")
        verdict = "ok" if achieved >= ratio else "FAIL"
        print(f"  {verdict}: {name} {hi:.0f} vs {lo_name} {lo:.0f} "
              f"-> {achieved:.2f}x (need >= {ratio:.2f}x)")
        if achieved < ratio:
            failures.append(
                f"{name}: {hi:.0f} is only {achieved:.2f}x {lo_name} "
                f"{lo:.0f} (need >= {ratio:.2f}x)")
    return pairs, failures


def warm_ratio_failures(report, ratio):
    """Cold/warm pair check; returns (pairs_seen, failure strings)."""
    return ratio_pair_failures(report, ratio, "_warm_", "_cold_")


def keepalive_ratio_failures(report, ratio):
    """Fresh/keep-alive pair check; (pairs_seen, failure strings)."""
    return ratio_pair_failures(report, ratio, "_keepalive_", "_fresh_")


def min_ratio_failures(report, fast, slow, ratio):
    """Trajectory builder-pair speed floor: in every case timing both
    builders (matched on threads), ``fast`` must be at least ``ratio``
    times quicker than ``slow``. Returns (pairs_seen, failures)."""
    pairs = 0
    failures = []
    for case in report["cases"]:
        times = {(t["builder"], t["threads"]): t["millis"]
                 for t in case["timings"]}
        for (builder, threads), fast_ms in sorted(times.items()):
            if builder != fast or (slow, threads) not in times:
                continue
            pairs += 1
            slow_ms = times[(slow, threads)]
            achieved = slow_ms / fast_ms if fast_ms > 0 else float("inf")
            verdict = "ok" if achieved >= ratio else "FAIL"
            print(f"  {verdict}: {case['dataset']} threads={threads} "
                  f"{fast} {fast_ms:.2f} ms vs {slow} {slow_ms:.2f} ms "
                  f"-> {achieved:.2f}x (need >= {ratio:.2f}x)")
            if achieved < ratio:
                failures.append(
                    f"{case['dataset']} threads={threads}: {fast} is only "
                    f"{achieved:.2f}x faster than {slow} "
                    f"(need >= {ratio:.2f}x)")
    return pairs, failures


def gate_min_ratio(path, spec):
    head, sep, ratio_s = spec.rpartition(":")
    if not sep or "_over_" not in head:
        sys.exit(f"--min-ratio wants FAST_over_SLOW:RATIO, got {spec!r}")
    fast, slow = head.split("_over_", 1)
    ratio = float(ratio_s)
    kind, report = load(path)
    if kind != "trajectory":
        sys.exit(f"{path}: --min-ratio needs a trajectory report, got {kind}")
    print(f"min-ratio gate ({fast} >= {ratio:.2f}x faster than {slow}) "
          f"on {path}:")
    pairs, failures = min_ratio_failures(report, fast, slow, ratio)
    if pairs == 0:
        sys.exit(f"{path}: no case times both {fast} and {slow}; "
                 "the gate would pass vacuously")
    if failures:
        print("MIN-RATIO FAILURES:")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"ok: all {pairs} builder pairs meet the {ratio:.2f}x floor")


def gate_ratio_pairs(path, ratio, label, check):
    kind, report = load(path)
    if kind != "bench_report":
        sys.exit(f"{path}: --{label}-ratio needs a BenchReport, got {kind}")
    print(f"{label}-ratio gate (>= {ratio:.2f}x) on {path}:")
    pairs, failures = check(report, ratio)
    if pairs == 0:
        sys.exit(f"{path}: no {label}-ratio headline pairs; "
                 "the gate would pass vacuously")
    if failures:
        print(f"{label.upper()}-RATIO FAILURES:")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"ok: all {pairs} {label} pairs meet the {ratio:.2f}x floor")


def self_check():
    report = {
        "trajectory_schema_version": 1,
        "cases": [{
            "dataset": "synthetic@1",
            "timings": [
                {"builder": "recursive", "threads": 1, "millis": 100.0},
                {"builder": "presorted", "threads": 2, "millis": 40.0},
            ],
        }],
    }
    if compare(report, report, 0.10):
        sys.exit("self-check FAILED: identical reports flagged a regression")
    slow = copy.deepcopy(report)
    for t in slow["cases"][0]["timings"]:
        t["millis"] *= 1.20
    if not compare(report, slow, 0.10):
        sys.exit("self-check FAILED: 20% regression not flagged at 10% tolerance")

    bench = {
        "schema_version": 2,
        "binary": "serve_throughput",
        "headlines": [
            {"name": "serve_encode_rows_per_sec", "value": 100000.0},
            {"name": "serve_clients", "value": 4.0},
        ],
    }
    if compare_headlines(bench, bench, 0.10):
        sys.exit("self-check FAILED: identical BenchReports flagged a regression")
    slower = copy.deepcopy(bench)
    slower["headlines"][0]["value"] *= 0.80
    if not compare_headlines(bench, slower, 0.10):
        sys.exit("self-check FAILED: 20% throughput drop not flagged "
                 "at 10% tolerance")
    config_only = copy.deepcopy(bench)
    config_only["headlines"][1]["value"] = 1.0
    if compare_headlines(bench, config_only, 0.10):
        sys.exit("self-check FAILED: non-_per_sec headline was gated")

    paired = {
        "schema_version": 2,
        "binary": "serve_throughput",
        "headlines": [
            {"name": "serve_encode_cold_rows_per_sec", "value": 100.0},
            {"name": "serve_encode_warm_rows_per_sec", "value": 200.0},
        ],
    }
    pairs, failures = warm_ratio_failures(paired, 1.5)
    if pairs != 1 or failures:
        sys.exit("self-check FAILED: 2.0x warm/cold pair rejected at 1.5x")
    paired["headlines"][1]["value"] = 120.0
    pairs, failures = warm_ratio_failures(paired, 1.5)
    if pairs != 1 or not failures:
        sys.exit("self-check FAILED: 1.2x warm/cold pair accepted at 1.5x")
    unpaired = {"schema_version": 2, "binary": "x",
                "headlines": [{"name": "serve_encode_warm_rows_per_sec",
                               "value": 1.0}]}
    pairs, _ = warm_ratio_failures(unpaired, 1.5)
    if pairs != 0:
        sys.exit("self-check FAILED: unpaired warm headline counted as a pair")

    regimes = {
        "schema_version": 2,
        "binary": "serve_throughput",
        "headlines": [
            {"name": "serve_encode_fresh_rows_per_sec", "value": 100.0},
            {"name": "serve_encode_keepalive_rows_per_sec", "value": 200.0},
        ],
    }
    pairs, failures = keepalive_ratio_failures(regimes, 1.3)
    if pairs != 1 or failures:
        sys.exit("self-check FAILED: 2.0x keepalive/fresh pair rejected at 1.3x")
    regimes["headlines"][1]["value"] = 110.0
    pairs, failures = keepalive_ratio_failures(regimes, 1.3)
    if pairs != 1 or not failures:
        sys.exit("self-check FAILED: 1.1x keepalive/fresh pair accepted at 1.3x")

    encode = {
        "trajectory_schema_version": 1,
        "cases": [{
            "dataset": "encode@synthetic@1",
            "timings": [
                {"builder": "encode_compiled_per_value", "threads": 1,
                 "millis": 90.0},
                {"builder": "encode_compiled_batched", "threads": 1,
                 "millis": 30.0},
            ],
        }],
    }
    batched = "encode_compiled_batched"
    per_value = "encode_compiled_per_value"
    pairs, failures = min_ratio_failures(encode, batched, per_value, 2.5)
    if pairs != 1 or failures:
        sys.exit("self-check FAILED: 3.0x batched/per-value pair "
                 "rejected at 2.5x")
    encode["cases"][0]["timings"][0]["millis"] = 45.0
    pairs, failures = min_ratio_failures(encode, batched, per_value, 2.5)
    if pairs != 1 or not failures:
        sys.exit("self-check FAILED: 1.5x batched/per-value pair "
                 "accepted at 2.5x")
    del encode["cases"][0]["timings"][0]
    pairs, _ = min_ratio_failures(encode, batched, per_value, 2.5)
    if pairs != 0:
        sys.exit("self-check FAILED: unpaired batched timing counted "
                 "as a min-ratio pair")

    clustered = {
        "schema_version": 2,
        "binary": "serve_throughput",
        "headlines": [
            {"name": "serve_encode_rows_per_sec", "value": 100.0},
            {"name": "serve_peers", "value": 2.0},
        ],
        "metrics": {"counters": [{"name": n, "value": 1}
                                 for n in PEER_COUNTERS]},
    }
    if cluster_counter_failures(clustered):
        sys.exit("self-check FAILED: complete cluster-mode report rejected")
    vacuous = copy.deepcopy(clustered)
    vacuous["metrics"]["counters"] = []
    if len(cluster_counter_failures(vacuous)) != len(PEER_COUNTERS):
        sys.exit("self-check FAILED: cluster-mode report without peer "
                 "counters must be rejected (vacuous pass)")
    standalone = copy.deepcopy(vacuous)
    standalone["headlines"][1]["value"] = 0.0
    if cluster_counter_failures(standalone):
        sys.exit("self-check FAILED: standalone report (peers=0) wrongly "
                 "held to the peer-counter requirement")

    def step(rate, achieved, ok, rejected, p99):
        return {"offered_rate": rate, "achieved_rate": achieved,
                "requests": ok + rejected, "ok": ok, "rejected": rejected,
                "p99_us": p99}

    sweep = {
        "openloop_schema_version": 1,
        "name": "synthetic",
        "steps": [step(100.0, 100.2, 600, 0, 900),
                  step(200.0, 199.5, 1200, 0, 1100),
                  step(400.0, 361.0, 2000, 160, 48000)],
        "knee": {"index": 2, "offered_rate": 400.0, "rejected": 160,
                 "p99_us": 48000},
    }
    if compare_openloop(sweep, sweep, 0.10):
        sys.exit("self-check FAILED: identical open-loop sweeps flagged "
                 "a regression")
    degraded = copy.deepcopy(sweep)
    degraded["steps"][0]["achieved_rate"] *= 0.80
    degraded["steps"][1]["p99_us"] = int(degraded["steps"][1]["p99_us"] * 1.5)
    if len(compare_openloop(sweep, degraded, 0.10)) != 2:
        sys.exit("self-check FAILED: open-loop achieved-rate drop and p99 "
                 "blow-up not both flagged at 10% tolerance")
    chaotic = copy.deepcopy(sweep)
    chaotic["steps"][2]["p99_us"] *= 10
    if compare_openloop(sweep, chaotic, 0.10):
        sys.exit("self-check FAILED: overloaded (rejected > 0) step was "
                 "latency-gated")
    if knee_failures(sweep):
        sys.exit("self-check FAILED: well-supported knee rejected")
    kneeless = copy.deepcopy(sweep)
    kneeless["knee"] = None
    if not knee_failures(kneeless):
        sys.exit("self-check FAILED: sweep without a knee passed the "
                 "knee gate")
    unsupported = copy.deepcopy(sweep)
    unsupported["steps"][2]["rejected"] = 0
    unsupported["steps"][2]["p99_us"] = 1200
    if not knee_failures(unsupported):
        sys.exit("self-check FAILED: knee claim not re-derivable from its "
                 "step was accepted")

    print("self-check passed: identity clean, 20% regression flagged "
          "in all three report modes, warm-, keepalive- and min-ratio "
          "gates discriminate, cluster-mode reports must carry peer "
          "counters, knee gate demands a supported knee")


def main(argv):
    if argv == ["--self-check"]:
        self_check()
        return
    if "--require-knee" in argv:
        i = argv.index("--require-knee")
        del argv[i:i + 1]
        if len(argv) != 1:
            sys.exit(__doc__.strip())
        gate_require_knee(argv[0])
        return
    if "--min-ratio" in argv:
        i = argv.index("--min-ratio")
        spec = argv[i + 1]
        del argv[i:i + 2]
        if len(argv) != 1:
            sys.exit(__doc__.strip())
        gate_min_ratio(argv[0], spec)
        return
    for flag, label, check in [("--warm-ratio", "warm", warm_ratio_failures),
                               ("--keepalive-ratio", "keepalive",
                                keepalive_ratio_failures)]:
        if flag in argv:
            i = argv.index(flag)
            ratio = float(argv[i + 1])
            del argv[i:i + 2]
            if len(argv) != 1:
                sys.exit(__doc__.strip())
            gate_ratio_pairs(argv[0], ratio, label, check)
            return
    tolerance = 0.10
    if "--tolerance" in argv:
        i = argv.index("--tolerance")
        tolerance = float(argv[i + 1])
        del argv[i:i + 2]
    if len(argv) != 2:
        sys.exit(__doc__.strip())
    (base_kind, baseline), (cand_kind, candidate) = load(argv[0]), load(argv[1])
    if base_kind != cand_kind:
        sys.exit(f"cannot compare a {base_kind} report against a "
                 f"{cand_kind} report")
    if base_kind == "trajectory":
        regressions = compare(baseline, candidate, tolerance)
    elif base_kind == "openloop":
        regressions = compare_openloop(baseline, candidate, tolerance)
    else:
        regressions = compare_headlines(baseline, candidate, tolerance)
    if regressions:
        print(f"REGRESSIONS (> {100 * tolerance:.0f}% over baseline):")
        for r in regressions:
            print(f"  {r}")
        sys.exit(1)
    print(f"ok: nothing regressed more than {100 * tolerance:.0f}%")


if __name__ == "__main__":
    main(sys.argv[1:])
