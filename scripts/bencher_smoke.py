#!/usr/bin/env python3
"""Smoke-test the open-loop bencher end to end.

Usage:
    bencher_smoke.py PPDT_BIN BENCHER_BIN

Runs one short low-rate open-loop step with ``ppdt-bencher``
orchestrating its own daemon (spawn, seed, sweep, tear down), then
asserts the whole reporting chain is sound:

* the bencher exits 0 and the daemon it spawned is gone afterwards;
* ``summary.json`` is a well-formed openloop_schema_version-1 document
  with exactly the configured rate steps;
* the achieved rate is within ``RATE_TOLERANCE`` of the offered rate —
  at 40 req/s even a single-core box must keep up, so missing the
  offered rate means the scheduler (not the server) is broken;
* nothing was dropped: every scheduled tick produced a CSV record, no
  transport errors, no non-2xx statuses at this trivial load;
* the per-request CSV round-trips through ``bench_ingest.py`` (which
  re-derives counts and exact percentiles and cross-checks the
  histogram summary) and the result passes ``bench_compare.py``'s
  identity compare.

Exits non-zero with a diagnostic on any failure. Used by check.sh.
"""

import json
import os
import subprocess
import sys
import tempfile


RATE = 40.0
DURATION_SECS = 3.0
RATE_TOLERANCE = 0.25

CONFIG = {
    "name": "smoke",
    "seed": 7,
    "scale": 0.001,
    "mix": [
        {"endpoint": "encode", "weight": 4},
        {"endpoint": "list_keys", "weight": 1},
    ],
    "rows_per_request": 16,
    "rates": [RATE],
    "duration_secs": DURATION_SECS,
    "concurrency": 2,
    "connection": "keepalive",
    "max_attempts": 1,
}

CSV_HEADER = ("seq,endpoint,sched_us,wait_us,latency_us,status,bytes,"
              "attempts,retry_wait_us")


def fail(msg):
    sys.exit(f"bencher smoke FAILED: {msg}")


def run(ppdt, bencher, tmp):
    cfg_path = os.path.join(tmp, "smoke.json")
    out_dir = os.path.join(tmp, "out")
    with open(cfg_path, "w") as fh:
        json.dump(CONFIG, fh)
    proc = subprocess.run(
        [bencher, "--config", cfg_path, "--out-dir", out_dir,
         "--ppdt", ppdt],
        capture_output=True, text=True, timeout=120)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        fail(f"ppdt-bencher exited {proc.returncode}")

    leftover = subprocess.run(
        ["pgrep", "-f", f"^{ppdt} serve"], capture_output=True, text=True)
    if leftover.stdout.strip():
        fail(f"daemon leaked after the run (pids {leftover.stdout.split()})")

    with open(os.path.join(out_dir, "summary.json")) as fh:
        summary = json.load(fh)
    if summary.get("openloop_schema_version") != 1:
        fail("summary.json is not an openloop_schema_version-1 document")
    steps = summary.get("steps", [])
    if len(steps) != len(CONFIG["rates"]):
        fail(f"expected {len(CONFIG['rates'])} rate steps, got {len(steps)}")
    step = steps[0]

    expected = int(RATE * DURATION_SECS)
    if step["requests"] != expected:
        fail(f"open-loop schedule dropped ticks: {step['requests']} records "
             f"for {expected} scheduled requests")
    if step["ok"] != expected:
        fail(f"non-2xx outcomes at trivial load: ok={step['ok']}, "
             f"rejected={step['rejected']}, "
             f"transport={step['transport_errors']}, "
             f"other={step['other_errors']}")
    achieved, offered = step["achieved_rate"], step["offered_rate"]
    if abs(achieved - offered) > RATE_TOLERANCE * offered:
        fail(f"achieved rate {achieved:.1f}/s outside "
             f"{RATE_TOLERANCE:.0%} of offered {offered:g}/s")
    if step["p99_us"] <= 0 or step["p99_us"] < step["p50_us"]:
        fail(f"nonsensical percentiles: p50={step['p50_us']} "
             f"p99={step['p99_us']}")

    csvs = [n for n in os.listdir(out_dir)
            if n.startswith("step_") and n.endswith(".csv")]
    if len(csvs) != 1:
        fail(f"expected one per-request CSV, found {csvs}")
    with open(os.path.join(out_dir, csvs[0])) as fh:
        lines = fh.read().splitlines()
    if lines[0] != CSV_HEADER:
        fail(f"CSV header mismatch: {lines[0]!r}")
    if len(lines) - 1 != expected:
        fail(f"CSV holds {len(lines) - 1} records, want {expected}")

    here = os.path.dirname(os.path.abspath(__file__))
    bench_json = os.path.join(tmp, "smoke_bench.json")
    for argv in ([sys.executable, os.path.join(here, "bench_ingest.py"),
                  out_dir, "--out", bench_json],
                 [sys.executable, os.path.join(here, "bench_compare.py"),
                  bench_json, bench_json]):
        r = subprocess.run(argv, capture_output=True, text=True)
        sys.stdout.write(r.stdout)
        if r.returncode != 0:
            fail(f"{os.path.basename(argv[1])} rejected the smoke sweep:\n"
                 f"{r.stdout}{r.stderr}")

    print(f"bencher smoke ok: {step['requests']} requests at "
          f"{achieved:.1f}/{offered:g} req/s, p50 {step['p50_us']} us, "
          f"p99 {step['p99_us']} us, CSV+summary+ingest+compare all "
          f"well-formed")


def main(argv):
    if len(argv) != 2:
        sys.exit(__doc__.strip())
    ppdt, bencher = map(os.path.abspath, argv)
    for b in (ppdt, bencher):
        if not os.access(b, os.X_OK):
            sys.exit(f"{b}: not an executable")
    with tempfile.TemporaryDirectory() as tmp:
        run(ppdt, bencher, tmp)


if __name__ == "__main__":
    main(sys.argv[1:])
