#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, docs, tests. A clean exit is the
# merge bar (referenced from README "Tests and benchmarks").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== all checks passed"
