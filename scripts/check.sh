#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, docs, tests, fault injection and
# the panic-free-library gate. A clean exit is the merge bar
# (referenced from README "Tests and benchmarks").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== fault injection"
cargo test -p ppdt-transform --test fault_injection -q

echo "== panic gate (library code must use typed errors)"
python3 scripts/panic_gate.py

echo "== all checks passed"
