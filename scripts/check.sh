#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, docs, tests, fault injection and
# the panic-free-library gate. A clean exit is the merge bar
# (referenced from README "Tests and benchmarks").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== fault injection"
cargo test -p ppdt-transform --test fault_injection -q

echo "== panic gate (library code must use typed errors)"
python3 scripts/panic_gate.py

echo "== deprecated-API gate (legacy encode free functions stay in their shim)"
python3 scripts/deprecated_gate.py

echo "== protocol gate (docs/PROTOCOL.md matches the serve router)"
python3 scripts/protocol_gate.py --self-check
python3 scripts/protocol_gate.py

echo "== bench trajectory (smoke) + regression gate self-check"
python3 scripts/bench_compare.py --self-check
smoke_out="$(mktemp /tmp/ppdt_traj_smoke.XXXXXX.json)"
serve_smoke_out="$(mktemp /tmp/ppdt_serve_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_out" "$serve_smoke_out"' EXIT
scripts/bench_trajectory.sh --smoke --out "$smoke_out" --serve-out "$serve_smoke_out"
python3 scripts/bench_compare.py BENCH_PR3.json BENCH_PR3.json
python3 scripts/bench_compare.py BENCH_PR4.json BENCH_PR4.json
python3 scripts/bench_compare.py BENCH_PR5.json BENCH_PR5.json
python3 scripts/bench_compare.py BENCH_PR6.json BENCH_PR6.json
python3 scripts/bench_compare.py BENCH_PR8.json BENCH_PR8.json
python3 scripts/bench_compare.py BENCH_PR9.json BENCH_PR9.json

echo "== open-loop knee gate (committed BENCH_PR9.json found saturation)"
python3 scripts/bench_ingest.py --self-check
python3 scripts/bench_compare.py --require-knee BENCH_PR9.json

echo "== batched encode speedup floor (committed BENCH_PR8.json)"
python3 scripts/bench_compare.py \
  --min-ratio encode_compiled_batched_over_encode_compiled_per_value:2.5 \
  BENCH_PR8.json

echo "== warm-cache throughput floor (committed BENCH_PR5.json + BENCH_PR6.json)"
python3 scripts/bench_compare.py --warm-ratio 1.5 BENCH_PR5.json
python3 scripts/bench_compare.py --warm-ratio 1.5 BENCH_PR6.json

echo "== keep-alive throughput floor (committed BENCH_PR6.json)"
python3 scripts/bench_compare.py --keepalive-ratio 1.3 BENCH_PR6.json

echo "== serve daemon smoke (healthz, encode/classify round-trip, SIGTERM)"
cargo build --release -q -p ppdt-cli
python3 scripts/serve_smoke.py target/release/ppdt

echo "== cluster smoke (3-node convergence, SIGKILL failover, zero lost answers)"
python3 scripts/cluster_smoke.py target/release/ppdt

echo "== bencher smoke (open-loop low-rate run: achieved rate, CSV/JSON shape, ingest round-trip)"
cargo build --release -q -p ppdt-bencher
python3 scripts/bencher_smoke.py target/release/ppdt target/release/ppdt-bencher

echo "== all checks passed"
