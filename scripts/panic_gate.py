#!/usr/bin/env python3
"""Panic gate: forbid panicking constructs in non-test library code.

Scans `crates/*/src/**/*.rs` for `panic!`, `unreachable!`, `todo!`,
`.unwrap()` and `.expect(`. Lines inside test modules (everything from
the first `#[cfg(test)]` to end of file — the repo convention puts the
test module last) are exempt, as is `ppdt-bench` (the experiment
driver operates on trusted synthetic data).

Known trusted-invariant sites are allowlisted in
`scripts/panic_allowlist.txt`: one `path pattern` pair per line, where
`pattern` is a literal substring of the offending line. Every entry
should carry a trailing `# reason`.

Exit code 0 when clean, 1 when a non-allowlisted construct appears.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
CONSTRUCTS = re.compile(r"panic!|unreachable!|todo!|\.unwrap\(\)|\.expect\(")
EXEMPT_CRATES = {"bench"}


def allowlist():
    entries = []
    path = ROOT / "scripts" / "panic_allowlist.txt"
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        file_part, _, pattern = line.partition(" ")
        entries.append((file_part, pattern.strip()))
    return entries


def allowed(rel, text, entries):
    return any(rel == f and (not p or p in text) for f, p in entries)


def main():
    entries = allowlist()
    violations = []
    for path in sorted(ROOT.glob("crates/*/src/**/*.rs")):
        crate = path.relative_to(ROOT / "crates").parts[0]
        if crate in EXEMPT_CRATES:
            continue
        rel = str(path.relative_to(ROOT))
        in_tests = False
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "#[cfg(test)]" in line:
                in_tests = True
            if in_tests:
                continue
            stripped = line.split("//", 1)[0]
            if CONSTRUCTS.search(stripped) and not allowed(rel, line, entries):
                violations.append(f"{rel}:{lineno}: {line.strip()}")
    if violations:
        print("new panicking construct(s) in library code:")
        for v in violations:
            print(f"  {v}")
        print(
            "either return a typed PpdtError or add 'path pattern  # reason' "
            "to scripts/panic_allowlist.txt"
        )
        return 1
    print(f"panic gate clean ({len(entries)} allowlisted site(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
