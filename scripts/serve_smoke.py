#!/usr/bin/env python3
"""End-to-end smoke test of the `ppdt serve` daemon.

Starts `ppdt serve --addr 127.0.0.1:0 --keystore-dir <tmp>`, parses the
bound address from the daemon's listen line, then over real loopback
HTTP:

1. GET  /healthz           -> 200 with status "ok"
2. POST /v1/keys           -> 201, storing a key produced by
                              `ppdt encode`
3. POST /v1/encode (CSV)   -> 200, transformed relation comes back
4. POST /v1/classify       -> 200, one label per query row (through a
                              tree mined on the daemon-encoded D')
5. GET  /metrics           -> 200, encode/classify counters advanced
6. SIGTERM                 -> daemon drains and exits 0

Usage: serve_smoke.py PPDT_BINARY

Run from the repo root by scripts/check.sh; exits nonzero on any
failure.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

TIMEOUT = 10  # seconds, per HTTP call and per wait


def http(method, url, body=None):
    """Returns (status, parsed-JSON body); HTTP errors are not raised."""
    data = body.encode() if isinstance(body, str) else body
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=TIMEOUT) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


def write_training_csv(path, rows=80):
    """Two numeric attributes, label decided by a simple threshold rule
    (so the mined tree is non-trivial), deterministic across runs."""
    with open(path, "w") as fh:
        fh.write("age,balance,label\n")
        for i in range(rows):
            age = 20 + (i * 7) % 50
            balance = 100 + (i * 131) % 4000
            label = "yes" if age < 45 and balance > 1500 else "no"
            fh.write(f"{age},{balance},{label}\n")


def fail(daemon, msg):
    daemon.kill()
    out, _ = daemon.communicate(timeout=TIMEOUT)
    sys.exit(f"serve_smoke FAILED: {msg}\n--- daemon output ---\n{out}")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    ppdt = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="ppdt-serve-smoke-") as tmp:
        # Produce a key + plaintext CSV with the CLI itself so the smoke
        # test exercises the same artifacts a real custodian would ship.
        csv = os.path.join(tmp, "d.csv")
        key = os.path.join(tmp, "key.json")
        out_csv = os.path.join(tmp, "d_prime.csv")
        write_training_csv(csv)
        subprocess.run([ppdt, "encode", csv, "--out", out_csv,
                        "--key", key, "--seed", "7"],
                       check=True, timeout=60)

        daemon = subprocess.Popen(
            [ppdt, "serve", "--addr", "127.0.0.1:0",
             "--keystore-dir", os.path.join(tmp, "keys")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            # `ppdt serve` prints exactly one parseable line on startup:
            #   ppdt-serve listening on <addr> (workers=.., ...)
            line = daemon.stdout.readline()
            if "listening on" not in line:
                fail(daemon, f"unexpected startup line: {line!r}")
            addr = line.split("listening on", 1)[1].split()[0]
            base = f"http://{addr}"

            status, body = http("GET", f"{base}/healthz")
            if status != 200 or body.get("status") != "ok":
                fail(daemon, f"healthz: {status} {body}")

            with open(key) as fh:
                key_json = fh.read()
            status, body = http("POST", f"{base}/v1/keys",
                                json.dumps({"key": json.loads(key_json)}))
            if status != 201:
                fail(daemon, f"store key: {status} {body}")
            key_id = body["key_id"]

            with open(csv) as fh:
                plain = fh.read()
            status, body = http("POST", f"{base}/v1/encode",
                                json.dumps({"key_id": key_id, "csv": plain,
                                            "rows": None}))
            if status != 200 or not body.get("csv"):
                fail(daemon, f"encode: {status} {body}")

            # Classify through a tree mined from the daemon's own D'.
            tree = os.path.join(tmp, "t_prime.json")
            with open(os.path.join(tmp, "served.csv"), "w") as fh:
                fh.write(body["csv"])
            subprocess.run([ppdt, "mine", os.path.join(tmp, "served.csv"),
                            "--out", tree], check=True, timeout=60)
            rows = [[float(v) for v in ln.split(",")[:-1]]
                    for ln in plain.strip().splitlines()[1:]][:5]
            with open(tree) as fh:
                tree_json = json.load(fh)
            status, body = http("POST", f"{base}/v1/classify",
                                json.dumps({"key_id": key_id,
                                            "tree": tree_json, "rows": rows}))
            if status != 200 or len(body.get("labels", [])) != len(rows):
                fail(daemon, f"classify: {status} {body}")

            status, body = http("GET", f"{base}/metrics")
            served = {e["endpoint"]: e["requests"]
                      for e in body["serve"]["endpoints"]}
            if status != 200 or served.get("encode", 0) < 1 \
                    or served.get("classify", 0) < 1:
                fail(daemon, f"metrics: {status} {body}")

            daemon.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + TIMEOUT
            while daemon.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            if daemon.poll() != 0:
                fail(daemon, f"SIGTERM exit code {daemon.poll()!r} "
                             f"(want clean 0)")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=TIMEOUT)

    print("serve_smoke passed: healthz, key store, encode, classify, "
          "metrics, graceful SIGTERM")


if __name__ == "__main__":
    main()
