#!/usr/bin/env python3
"""End-to-end smoke test of the `ppdt serve` daemon.

Starts `ppdt serve --addr 127.0.0.1:0 --keystore-dir <tmp>`, parses the
bound address from the daemon's listen line, then over real loopback
HTTP:

1. GET  /healthz           -> 200 with status "ok"
2. POST /v1/keys           -> 201, storing a key produced by
                              `ppdt encode`
3. POST /v1/encode (CSV)   -> 200, transformed relation comes back
4. POST /v1/classify       -> 200, one label per query row (through a
                              tree mined on the daemon-encoded D')
5. keep-alive probe        -> two requests on ONE raw socket, both
                              answered, socket stays open
6. chunked upload probe    -> POST /v1/encode with a chunked body
                              streams the transformed CSV back
7. tenant + rekey probe    -> keys stored under /v2/t/acme/ are
                              invisible to /v1, and a rekey from key A
                              to key B classifies like the original
8. GET  /metrics           -> 200, encode/classify counters advanced,
                              keepalive_reuses and streamed_chunks > 0,
                              a per-tenant row for "acme"
9. SIGTERM                 -> daemon drains and exits 0

Usage: serve_smoke.py PPDT_BINARY

Run from the repo root by scripts/check.sh; exits nonzero on any
failure.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

TIMEOUT = 10  # seconds, per HTTP call and per wait


def http(method, url, body=None):
    """Returns (status, parsed-JSON body); HTTP errors are not raised."""
    data = body.encode() if isinstance(body, str) else body
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=TIMEOUT) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


def read_http_response(sock):
    """Reads one HTTP/1.1 response off `sock` (Content-Length or
    chunked); returns (status, body bytes). Leaves the socket open."""
    fh = sock.makefile("rb")
    status = int(fh.readline().split()[1])
    length, chunked = None, False
    while True:
        line = fh.readline().strip()
        if not line:
            break
        name, _, value = line.partition(b":")
        if name.lower() == b"content-length":
            length = int(value)
        elif name.lower() == b"transfer-encoding" \
                and b"chunked" in value.lower():
            chunked = True
    if chunked:
        body = b""
        while True:
            size = int(fh.readline().strip(), 16)
            piece = fh.read(size + 2)[:size]  # chunk + CRLF
            if size == 0:
                return status, body
            body += piece
    return status, fh.read(length or 0)


def keepalive_probe(addr):
    """Two requests on one socket; returns (status1, status2)."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=TIMEOUT) as s:
        req = b"GET /healthz HTTP/1.1\r\n\r\n"
        s.sendall(req)
        s1, _ = read_http_response(s)
        s.sendall(req)  # the same socket must still be being served
        s2, _ = read_http_response(s)
        return s1, s2


def chunked_upload_probe(addr, key_id, csv_text):
    """Streams a chunked encode up; returns (status, body text)."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=TIMEOUT) as s:
        s.sendall(b"POST /v1/encode HTTP/1.1\r\n"
                  b"transfer-encoding: chunked\r\n"
                  b"connection: close\r\n\r\n")
        payload = json.dumps({"key_id": key_id}) + "\n" + csv_text
        for i in range(0, len(payload), 1024):
            piece = payload[i:i + 1024].encode()
            s.sendall(b"%x\r\n%s\r\n" % (len(piece), piece))
        s.sendall(b"0\r\n\r\n")
        status, body = read_http_response(s)
        return status, body.decode()


def write_training_csv(path, rows=80):
    """Two numeric attributes, label decided by a simple threshold rule
    (so the mined tree is non-trivial), deterministic across runs."""
    with open(path, "w") as fh:
        fh.write("age,balance,label\n")
        for i in range(rows):
            age = 20 + (i * 7) % 50
            balance = 100 + (i * 131) % 4000
            label = "yes" if age < 45 and balance > 1500 else "no"
            fh.write(f"{age},{balance},{label}\n")


def fail(daemon, msg):
    daemon.kill()
    out, _ = daemon.communicate(timeout=TIMEOUT)
    sys.exit(f"serve_smoke FAILED: {msg}\n--- daemon output ---\n{out}")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    ppdt = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="ppdt-serve-smoke-") as tmp:
        # Produce a key + plaintext CSV with the CLI itself so the smoke
        # test exercises the same artifacts a real custodian would ship.
        csv = os.path.join(tmp, "d.csv")
        key = os.path.join(tmp, "key.json")
        out_csv = os.path.join(tmp, "d_prime.csv")
        write_training_csv(csv)
        subprocess.run([ppdt, "encode", csv, "--out", out_csv,
                        "--key", key, "--seed", "7"],
                       check=True, timeout=60)

        daemon = subprocess.Popen(
            [ppdt, "serve", "--addr", "127.0.0.1:0",
             "--keystore-dir", os.path.join(tmp, "keys")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            # `ppdt serve` prints exactly one parseable line on startup:
            #   ppdt-serve listening on <addr> (workers=.., ...)
            line = daemon.stdout.readline()
            if "listening on" not in line:
                fail(daemon, f"unexpected startup line: {line!r}")
            addr = line.split("listening on", 1)[1].split()[0]
            base = f"http://{addr}"

            status, body = http("GET", f"{base}/healthz")
            if status != 200 or body.get("status") != "ok":
                fail(daemon, f"healthz: {status} {body}")

            with open(key) as fh:
                key_json = fh.read()
            status, body = http("POST", f"{base}/v1/keys",
                                json.dumps({"key": json.loads(key_json)}))
            if status != 201:
                fail(daemon, f"store key: {status} {body}")
            key_id = body["key_id"]

            with open(csv) as fh:
                plain = fh.read()
            status, body = http("POST", f"{base}/v1/encode",
                                json.dumps({"key_id": key_id, "csv": plain,
                                            "rows": None}))
            if status != 200 or not body.get("csv"):
                fail(daemon, f"encode: {status} {body}")
            encoded_csv = body["csv"]

            # Classify through a tree mined from the daemon's own D'.
            tree = os.path.join(tmp, "t_prime.json")
            with open(os.path.join(tmp, "served.csv"), "w") as fh:
                fh.write(body["csv"])
            subprocess.run([ppdt, "mine", os.path.join(tmp, "served.csv"),
                            "--out", tree], check=True, timeout=60)
            rows = [[float(v) for v in ln.split(",")[:-1]]
                    for ln in plain.strip().splitlines()[1:]][:5]
            with open(tree) as fh:
                tree_json = json.load(fh)
            status, body = http("POST", f"{base}/v1/classify",
                                json.dumps({"key_id": key_id,
                                            "tree": tree_json, "rows": rows}))
            if status != 200 or len(body.get("labels", [])) != len(rows):
                fail(daemon, f"classify: {status} {body}")
            labels_v1 = body["labels"]

            # Keep-alive: one raw socket, two answered requests.
            s1, s2 = keepalive_probe(addr)
            if (s1, s2) != (200, 200):
                fail(daemon, f"keep-alive probe: {s1}, {s2}")

            # Chunked upload: the streamed answer must match the
            # buffered encode of the same relation.
            status, streamed = chunked_upload_probe(addr, key_id, plain)
            if status != 200 or streamed != encoded_csv:
                fail(daemon, f"chunked upload: {status} "
                             f"(matches buffered: {streamed == encoded_csv})")

            # Tenancy: the same key under /v2/t/acme/ is a separate
            # entry; a second key stored only there stays invisible
            # to /v1; and an A->B rekey inside the tenant classifies
            # exactly like the pre-rotation pipeline.
            status, body = http("POST", f"{base}/v2/t/acme/keys",
                                json.dumps({"key": json.loads(key_json)}))
            if status != 201 or body.get("tenant") != "acme":
                fail(daemon, f"tenant store: {status} {body}")
            key2 = os.path.join(tmp, "key2.json")
            subprocess.run([ppdt, "encode", csv,
                            "--out", os.path.join(tmp, "unused.csv"),
                            "--key", key2, "--seed", "8"],
                           check=True, timeout=60)
            with open(key2) as fh:
                key2_json = fh.read()
            status, body = http("POST", f"{base}/v2/t/acme/keys",
                                json.dumps({"key": json.loads(key2_json)}))
            if status != 201:
                fail(daemon, f"tenant store key B: {status} {body}")
            key_id_b = body["key_id"]
            status, body = http("GET", f"{base}/v2/t/acme/keys")
            if status != 200 or len(body.get("keys", [])) != 2:
                fail(daemon, f"tenant listing: {status} {body}")
            status, body = http("POST", f"{base}/v1/encode",
                                json.dumps({"key_id": key_id_b,
                                            "csv": plain, "rows": None}))
            if status != 404:
                fail(daemon, f"tenant isolation: /v1 sees acme's key B: "
                             f"{status} {body}")

            status, body = http("POST", f"{base}/v2/t/acme/encode",
                                json.dumps({"key_id": key_id, "csv": plain,
                                            "rows": None}))
            if status != 200:
                fail(daemon, f"tenant encode: {status} {body}")
            status, body = http("POST", f"{base}/v2/t/acme/rekey",
                                json.dumps({"from_key_id": key_id,
                                            "to_key_id": key_id_b,
                                            "csv": body["csv"]}))
            n_rows = len(plain.strip().splitlines()) - 1
            if status != 200 or body.get("rows_rekeyed") != n_rows:
                fail(daemon, f"rekey: {status} {body}")
            tree_b = os.path.join(tmp, "t_rekeyed.json")
            with open(os.path.join(tmp, "rekeyed.csv"), "w") as fh:
                fh.write(body["csv"])
            subprocess.run([ppdt, "mine", os.path.join(tmp, "rekeyed.csv"),
                            "--out", tree_b], check=True, timeout=60)
            with open(tree_b) as fh:
                tree_b_json = json.load(fh)
            status, body = http("POST", f"{base}/v2/t/acme/classify",
                                json.dumps({"key_id": key_id_b,
                                            "tree": tree_b_json,
                                            "rows": rows}))
            if status != 200 or body.get("labels") != labels_v1:
                fail(daemon, f"rekeyed classify diverged: {status} {body} "
                             f"(want labels {labels_v1})")

            status, body = http("GET", f"{base}/metrics")
            served = {e["endpoint"]: e["requests"]
                      for e in body["serve"]["endpoints"]}
            if status != 200 or served.get("encode", 0) < 1 \
                    or served.get("classify", 0) < 1 \
                    or served.get("rekey", 0) < 1:
                fail(daemon, f"metrics: {status} {body}")
            if body["serve"].get("keepalive_reuses", 0) < 1 \
                    or body["serve"].get("streamed_chunks", 0) < 1:
                fail(daemon, f"metrics: keep-alive/stream counters flat: "
                             f"{body['serve']}")
            tenants = {t["tenant"]: t
                       for t in body["serve"].get("tenants", [])}
            if tenants.get("acme", {}).get("requests", 0) < 1:
                fail(daemon, f"metrics: no per-tenant row for acme: "
                             f"{body['serve'].get('tenants')}")

            daemon.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + TIMEOUT
            while daemon.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            if daemon.poll() != 0:
                fail(daemon, f"SIGTERM exit code {daemon.poll()!r} "
                             f"(want clean 0)")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=TIMEOUT)

    print("serve_smoke passed: healthz, key store, encode, classify, "
          "keep-alive, chunked upload, tenant isolation, rekey, "
          "metrics, graceful SIGTERM")


if __name__ == "__main__":
    main()
