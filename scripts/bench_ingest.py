#!/usr/bin/env python3
"""Turn a ppdt-bencher sweep directory into a committed benchmark entry.

Usage:
    bench_ingest.py SWEEP_DIR --out BENCH.json [--name NAME]
                    [--update-benchmarks BENCHMARKS.md]
    bench_ingest.py --self-check

``SWEEP_DIR`` is an ``--out-dir`` written by ``ppdt-bencher``: one
``summary.json`` (openloop_schema_version 1) plus one
``step_<k>_<rate>.csv`` of per-request records per rate step.

For every step this script recomputes the ground truth from the raw
CSV — request/outcome counts, achieved rate, and *exact* percentiles
from the sorted per-request service latencies (latency minus client
retry backoff, successes only) — and cross-checks the daemon-side
histogram summary against it:

* all counts must match exactly;
* every histogram quantile q must satisfy
  ``exact_q <= hist_q <= exact_q * (1 + 1/64) + 1`` — the log-bucketed
  histogram (64 sub-buckets per octave) promises at most one
  sub-bucket of overshoot and may never undershoot the true value.

The emitted report is the summary document plus ``generated_by``,
ingest provenance, and per-step ``exact_p50_us`` / ``exact_p99_us`` /
``exact_p999_us`` fields, suitable for committing (e.g. BENCH_PR9.json)
and gating with ``bench_compare.py`` (identity compare and
``--require-knee``).

``--update-benchmarks FILE`` rewrites the block between the
``<!-- bench_ingest:begin -->`` / ``<!-- bench_ingest:end -->`` markers
in FILE with a rendered sweep table (appending the block if the
markers are absent).

``--self-check`` runs the ingester against a synthetic sweep directory
and verifies both directions: a consistent sweep ingests cleanly, and
a histogram summary that undershoots the exact percentiles is
rejected.
"""

import csv
import json
import math
import os
import re
import sys
import tempfile


CSV_HEADER = ["seq", "endpoint", "sched_us", "wait_us", "latency_us",
              "status", "bytes", "attempts", "retry_wait_us"]

# One sub-bucket of relative overshoot, plus 1 us of integer slack:
# the LogHistogram quantile reports its bucket's upper bound.
HIST_SLACK = 1.0 / 64.0

MARK_BEGIN = "<!-- bench_ingest:begin -->"
MARK_END = "<!-- bench_ingest:end -->"


def exact_quantile(sorted_vals, q):
    """Nearest-rank quantile over an ascending list (rank ceil(q*n))."""
    if not sorted_vals:
        return 0
    rank = min(max(int(math.ceil(q * len(sorted_vals))), 1), len(sorted_vals))
    return sorted_vals[rank - 1]


def read_step_csv(path):
    """Parse one per-request CSV into a list of record dicts."""
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows or rows[0] != CSV_HEADER:
        sys.exit(f"{path}: bad or missing CSV header "
                 f"(want {','.join(CSV_HEADER)})")
    records = []
    for lineno, row in enumerate(rows[1:], start=2):
        if len(row) != len(CSV_HEADER):
            sys.exit(f"{path}:{lineno}: expected {len(CSV_HEADER)} columns, "
                     f"got {len(row)}")
        rec = dict(zip(CSV_HEADER, row))
        for field in CSV_HEADER:
            if field == "endpoint":
                continue
            try:
                rec[field] = int(rec[field])
            except ValueError:
                sys.exit(f"{path}:{lineno}: non-integer {field} "
                         f"{rec[field]!r}")
        records.append(rec)
    return records


def crosscheck_step(step, records, label):
    """Recompute a step's counts and exact percentiles from its raw CSV
    and verify the histogram summary against them. Returns the exact
    percentile dict; exits on any inconsistency."""
    ok = [r for r in records if 200 <= r["status"] < 300]
    rejected = sum(1 for r in records if r["status"] == 503)
    transport = sum(1 for r in records if r["status"] == 0)
    other = len(records) - len(ok) - rejected - transport
    counts = {"requests": len(records), "ok": len(ok), "rejected": rejected,
              "transport_errors": transport, "other_errors": other}
    for name, got in counts.items():
        if step[name] != got:
            sys.exit(f"{label}: summary says {name}={step[name]} but the "
                     f"CSV holds {got}")

    service = sorted(max(r["latency_us"] - r["retry_wait_us"], 0)
                     for r in ok)
    exact = {q: exact_quantile(service, q / 1000.0)
             for q in (500, 950, 990, 999)}
    for q, field in ((500, "p50_us"), (950, "p95_us"), (990, "p99_us"),
                     (999, "p999_us")):
        hist = step[field]
        lo, hi = exact[q], exact[q] * (1.0 + HIST_SLACK) + 1.0
        if not lo <= hist <= hi:
            sys.exit(f"{label}: histogram {field}={hist} outside the "
                     f"[{lo}, {hi:.1f}] bound around the exact CSV value; "
                     f"the summary does not describe these requests")
    if service and step["max_us"] != service[-1]:
        sys.exit(f"{label}: histogram max_us={step['max_us']} but the CSV "
                 f"max service latency is {service[-1]}")
    return {"exact_p50_us": exact[500], "exact_p99_us": exact[990],
            "exact_p999_us": exact[999]}


def step_csvs(sweep_dir, n_steps):
    """Locate step_<k>_<rate>.csv for each step index, in order."""
    by_index = {}
    for name in os.listdir(sweep_dir):
        m = re.fullmatch(r"step_(\d+)_[^/]*\.csv", name)
        if m:
            by_index[int(m.group(1))] = os.path.join(sweep_dir, name)
    missing = [k for k in range(n_steps) if k not in by_index]
    if missing:
        sys.exit(f"{sweep_dir}: summary has {n_steps} steps but the "
                 f"per-request CSVs for steps {missing} are missing")
    return [by_index[k] for k in range(n_steps)]


def ingest(sweep_dir, name=None):
    """Cross-check a sweep dir and return the enriched report dict."""
    summary_path = os.path.join(sweep_dir, "summary.json")
    try:
        with open(summary_path) as fh:
            report = json.load(fh)
    except OSError as err:
        sys.exit(f"{summary_path}: {err}")
    if report.get("openloop_schema_version") != 1:
        sys.exit(f"{summary_path}: not an open-loop summary "
                 f"(openloop_schema_version != 1)")
    steps = report.get("steps", [])
    if not steps:
        sys.exit(f"{summary_path}: no rate steps recorded")
    for k, path in enumerate(step_csvs(sweep_dir, len(steps))):
        records = read_step_csv(path)
        exact = crosscheck_step(steps[k], records,
                                f"step {k} ({os.path.basename(path)})")
        steps[k].update(exact)
    report["generated_by"] = "ppdt-bencher + scripts/bench_ingest.py"
    if name:
        report["name"] = name
    return report


def render_table(report):
    """Markdown sweep table for the BENCHMARKS.md block."""
    lines = [
        "| offered req/s | achieved | requests | 503s | p50 us | p99 us "
        "| p999 us | exact p99 us |",
        "|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    knee = report.get("knee")
    knee_idx = knee["index"] if knee else -1
    for k, s in enumerate(report["steps"]):
        mark = " **(knee)**" if k == knee_idx else ""
        lines.append(
            f"| {s['offered_rate']:g}{mark} | {s['achieved_rate']:.1f} "
            f"| {s['requests']} | {s['rejected']} | {s['p50_us']} "
            f"| {s['p99_us']} | {s['p999_us']} | {s['exact_p99_us']} |")
    return "\n".join(lines)


def update_benchmarks(path, report):
    """Replace (or append) the marked sweep block in BENCHMARKS.md."""
    cfg = report.get("config", {})
    knee = report.get("knee")
    knee_line = (
        f"Knee: offered {knee['offered_rate']:g} req/s "
        f"(step {knee['index']}: {knee['rejected']} rejected, "
        f"p99 {knee['p99_us']} us)." if knee
        else "Knee: not reached within the swept rates.")
    mix = ", ".join(f"{m['endpoint']}:{m['weight']}"
                    for m in cfg.get("mix", []))
    block = "\n".join([
        MARK_BEGIN,
        f"### Open-loop sweep `{report.get('name', 'unnamed')}`",
        "",
        f"Mix {mix}; "
        f"{cfg.get('rows_per_request', '?')} rows/request, scale "
        f"{cfg.get('scale', '?')}, {cfg.get('duration_secs', '?')} s/step, "
        f"{cfg.get('concurrency', '?')} workers, "
        f"{cfg.get('connection', '?')} connections.",
        "",
        render_table(report),
        "",
        knee_line,
        MARK_END,
    ])
    with open(path) as fh:
        text = fh.read()
    if MARK_BEGIN in text and MARK_END in text:
        head, _, rest = text.partition(MARK_BEGIN)
        _, _, tail = rest.partition(MARK_END)
        text = head + block + tail
    else:
        text = text.rstrip("\n") + "\n\n" + block + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    print(f"updated sweep block in {path}")


def write_synthetic_sweep(sweep_dir, *, corrupt=False):
    """Build a small consistent sweep dir for --self-check. With
    ``corrupt``, the summary's p99 undershoots the CSV truth."""
    def rec(seq, endpoint, sched, latency, status, retry_wait=0):
        return [seq, endpoint, sched, 0, latency, status, 64, 1, retry_wait]

    steps = []
    for k, (rate, n, lat_base, rejected) in enumerate(
            [(50.0, 100, 1000, 0), (100.0, 200, 1200, 20)]):
        records = []
        lats = []
        for i in range(n):
            status = 503 if i < rejected else 200
            lat = lat_base + i * 7
            if status == 200:
                lats.append(lat)
            records.append(rec(i, "encode" if i % 3 else "list_keys",
                               int(i * 1e6 / rate), lat, status))
        lats.sort()
        span = (n - 1) / rate + lats[-1] / 1e6
        p99 = exact_quantile(lats, 0.99)
        steps.append({
            "offered_rate": rate, "achieved_rate": n / span,
            "duration_secs": 2.0, "requests": n, "ok": n - rejected,
            "rejected": rejected, "transport_errors": 0, "other_errors": 0,
            "p50_us": exact_quantile(lats, 0.5),
            "p95_us": exact_quantile(lats, 0.95),
            "p99_us": int(p99 * 0.5) if corrupt else p99,
            "p999_us": exact_quantile(lats, 0.999),
            "max_us": lats[-1], "mean_us": sum(lats) / len(lats),
            "mean_wait_us": 0.0,
        })
        with open(os.path.join(sweep_dir, f"step_{k}_{rate:g}.csv"),
                  "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(CSV_HEADER)
            w.writerows(records)
    summary = {
        "openloop_schema_version": 1, "name": "self-check",
        "config": {"mix": [{"endpoint": "encode", "weight": 2},
                           {"endpoint": "list_keys", "weight": 1}],
                   "rows_per_request": 64, "scale": 0.01,
                   "duration_secs": 2.0, "concurrency": 2,
                   "connection": "keepalive"},
        "steps": steps,
        "knee": {"index": 1, "offered_rate": 100.0, "rejected": 20,
                 "p99_us": steps[1]["p99_us"]},
    }
    with open(os.path.join(sweep_dir, "summary.json"), "w") as fh:
        json.dump(summary, fh, indent=2)


def self_check():
    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "good")
        os.mkdir(good)
        write_synthetic_sweep(good)
        report = ingest(good, name="self-check")
        for field in ("exact_p50_us", "exact_p99_us", "exact_p999_us"):
            if field not in report["steps"][0]:
                sys.exit(f"self-check FAILED: ingest did not add {field}")
        if report["steps"][0]["exact_p99_us"] > report["steps"][0]["p99_us"]:
            sys.exit("self-check FAILED: exact p99 above histogram p99")

        bench = os.path.join(tmp, "bench.md")
        with open(bench, "w") as fh:
            fh.write("# Benchmarks\n\nold text\n")
        update_benchmarks(bench, report)
        update_benchmarks(bench, report)
        with open(bench) as fh:
            text = fh.read()
        if text.count(MARK_BEGIN) != 1 or "old text" not in text:
            sys.exit("self-check FAILED: marker block not idempotent or "
                     "surrounding text lost")

        bad = os.path.join(tmp, "bad")
        os.mkdir(bad)
        write_synthetic_sweep(bad, corrupt=True)
        if os.fork() == 0:
            sys.stdout = sys.stderr = open(os.devnull, "w")
            ingest(bad)
            os._exit(0)
        _, status = os.wait()
        if status == 0:
            sys.exit("self-check FAILED: summary undershooting the exact "
                     "CSV percentiles was accepted")
    print("self-check passed: consistent sweep ingests with exact "
          "percentiles attached, BENCHMARKS block is idempotent, and a "
          "summary that contradicts its own CSVs is rejected")


def main(argv):
    if argv == ["--self-check"]:
        self_check()
        return
    out = bench_md = name = None
    if "--out" in argv:
        i = argv.index("--out")
        out = argv[i + 1]
        del argv[i:i + 2]
    if "--name" in argv:
        i = argv.index("--name")
        name = argv[i + 1]
        del argv[i:i + 2]
    if "--update-benchmarks" in argv:
        i = argv.index("--update-benchmarks")
        bench_md = argv[i + 1]
        del argv[i:i + 2]
    if len(argv) != 1 or out is None:
        sys.exit(__doc__.strip())
    report = ingest(argv[0], name=name)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    steps = report["steps"]
    knee = report.get("knee")
    print(f"wrote {out}: {len(steps)} rate steps "
          f"({steps[0]['offered_rate']:g}..{steps[-1]['offered_rate']:g} "
          f"req/s), knee "
          f"{'at ' + format(knee['offered_rate'], 'g') + ' req/s' if knee else 'not reached'}")
    if bench_md:
        update_benchmarks(bench_md, report)


if __name__ == "__main__":
    main(sys.argv[1:])
