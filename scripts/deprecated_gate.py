#!/usr/bin/env python3
"""Deprecation gate: forbid the legacy encode free functions.

The encode entry points collapsed into the `Encoder` builder; the old
free functions (`encode_dataset`, `encode_dataset_with`,
`encode_dataset_parallel`, `encode_dataset_parallel_with`,
`encode_dataset_verified`, `encode_attribute`, `encode_attribute_with`)
lived on for a while as `#[deprecated]` shims in
`crates/transform/src/compat.rs` and have since been deleted outright.
This gate keeps them dead: it scans every `*.rs` file outside
`target/` and `vendor/` for call sites and fails on any hit —
including doc examples, which compile as doctests and would teach
readers the dead API.

Method calls like `Encoder::new(cfg).encode_attribute(...)` and plain
re-exports (`pub use ... encode_dataset`) are not call sites and are
not flagged.

Exit code 0 when clean, 1 when a deprecated call site appears.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SKIP_PARTS = {"target", "vendor"}

# A deprecated free-function *call*: the name followed by `(` or a
# turbofish, not preceded by `.` (method call) or an identifier
# character (a longer name or a `fn` definition is matched apart).
CALL = re.compile(
    r"(?<![\w.])"
    r"(encode_dataset(?:_parallel)?(?:_with)?|encode_dataset_verified"
    r"|encode_attribute(?:_with)?)"
    r"\s*(?:::<[^>]*>)?\s*\(")


def scan(path, rel):
    hits = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith("fn ") or stripped.startswith("pub fn "):
            continue
        m = CALL.search(line)
        if m:
            hits.append((rel, lineno, m.group(1), stripped))
    return hits


def main():
    violations = []
    for path in sorted(ROOT.glob("**/*.rs")):
        rel = str(path.relative_to(ROOT))
        if SKIP_PARTS & set(pathlib.Path(rel).parts):
            continue
        violations.extend(scan(path, rel))
    if violations:
        print("deleted legacy encode free functions called in-tree:",
              file=sys.stderr)
        for rel, lineno, name, text in violations:
            print(f"  {rel}:{lineno}: {name}: {text}", file=sys.stderr)
        print("migrate these call sites to the `Encoder` builder "
              "(see crates/transform/src/encoder.rs)", file=sys.stderr)
        return 1
    print("deprecated-API gate clean: no legacy encode calls")
    return 0


if __name__ == "__main__":
    sys.exit(main())
