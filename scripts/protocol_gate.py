#!/usr/bin/env python3
"""Prove docs/PROTOCOL.md matches the serve router.

Extracts every `("METHOD", "/path")` arm from `route_parts` in
crates/serve/src/handlers.rs and every `### METHOD /path` heading from
docs/PROTOCOL.md, and fails unless the two sets are identical — a new
endpoint cannot ship undocumented, and the docs cannot advertise a
route the daemon does not serve.

Usage: protocol_gate.py [--self-check]
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
HANDLERS = ROOT / "crates" / "serve" / "src" / "handlers.rs"
PROTOCOL = ROOT / "docs" / "PROTOCOL.md"

# Matches both the 2-tuple `/v1` match arms `("POST", "/v1/keys")` and
# the 3-tuple `V2_ROUTES` table rows
# `("POST", "/v2/t/{tenant}/keys", Endpoint::StoreKey)` — the path may
# be followed by `)` or by `, Endpoint::...`.
ROUTE_ARM = re.compile(r'\(\s*"(GET|POST|PUT|DELETE|PATCH)"\s*,\s*"(/[^"]*)"\s*[,)]')
DOC_HEADING = re.compile(r"^###\s+(GET|POST|PUT|DELETE|PATCH)\s+(/\S+)\s*$",
                         re.MULTILINE)


def router_routes(text):
    """Routes the daemon dispatches, from the `route_parts` match."""
    match = re.search(r"fn route_parts.*?^\}", text, re.DOTALL | re.MULTILINE)
    if not match:
        sys.exit(f"{HANDLERS}: could not find fn route_parts")
    return {f"{m} {p}" for m, p in ROUTE_ARM.findall(match.group(0))}


def documented_routes(text):
    return {f"{m} {p}" for m, p in DOC_HEADING.findall(text)}


def self_check():
    rust = '''
    fn route_parts(method: &str, path: &str) -> Result<Route, HttpError> {
        const V2_ROUTES: [(&str, &str, Endpoint); 2] = [
            ("POST", "/v2/t/{tenant}/thing", Endpoint::Thing),
            ("GET", "/v2/t/{tenant}/thing", Endpoint::ListThing),
        ];
        match (method, path) {
            ("POST", "/v1/thing") => Ok(Endpoint::Thing),
            ("GET", "/healthz") => Ok(Endpoint::Healthz),
            (_, p @ ("/v1/thing" | "/healthz")) => Err(nope(p)),
            _ => Err(HttpError::not_found("unknown_route", "x".into())),
        }
    }
    '''
    # The method-not-allowed arm has no method literal, so only the
    # real routes — both the /v1 2-tuples and the /v2 table's
    # 3-tuples — must be extracted.
    match = re.search(r"fn route_parts.*?^    \}", rust, re.DOTALL | re.MULTILINE)
    got = {f"{m} {p}" for m, p in ROUTE_ARM.findall(match.group(0))}
    want = {"POST /v1/thing", "GET /healthz",
            "POST /v2/t/{tenant}/thing", "GET /v2/t/{tenant}/thing"}
    if got != want:
        sys.exit(f"self-check FAILED: router extraction got {sorted(got)}")
    doc = ("### POST /v1/thing\n\nbody\n\n### GET /healthz\n\n"
           "### POST /v2/t/{tenant}/thing\n\n### GET /v2/t/{tenant}/thing\n\n"
           "#### GET /not-a-route\n")
    if documented_routes(doc) != want:
        sys.exit("self-check FAILED: doc extraction")
    print("self-check passed: both extractors discriminate")


def main(argv):
    if argv == ["--self-check"]:
        self_check()
        return
    if argv:
        sys.exit(__doc__.strip())
    in_router = router_routes(HANDLERS.read_text())
    in_docs = documented_routes(PROTOCOL.read_text())
    if not in_router:
        sys.exit(f"{HANDLERS}: no routes extracted; the gate is broken")
    failures = []
    for route in sorted(in_router - in_docs):
        failures.append(f"served but undocumented: {route}")
    for route in sorted(in_docs - in_router):
        failures.append(f"documented but not served: {route}")
    if failures:
        print("PROTOCOL GATE FAILURES:")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"ok: all {len(in_router)} routes match between "
          f"{HANDLERS.relative_to(ROOT)} and {PROTOCOL.relative_to(ROOT)}")


if __name__ == "__main__":
    main(sys.argv[1:])
