//! Attack lab: play the hacker against one transformed attribute and
//! watch how prior knowledge, fitting method and breakpoint strategy
//! change what leaks.
//!
//! ```sh
//! cargo run --release --example attack_lab
//! ```

use ppdt::attack::{combine_cracks, fit_crack, generate_kps, sorting_attack};
use ppdt::prelude::*;
use ppdt::risk::{is_crack, rho_for_attr};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // A census-like table; we attack the wage attribute.
    let d = ppdt::data::gen::census_like(&mut rng, 5_000);
    let attr = AttrId(1);
    println!(
        "target: '{}' — {} distinct values",
        d.schema().attr_name(attr),
        d.active_domain(attr).len()
    );

    let rho = rho_for_attr(&d, attr, 0.02);
    println!("crack radius rho = {rho:.0} (2% of the dynamic range)\n");

    for (label, strategy) in [
        ("no breakpoints (single monotone fn)", BreakpointStrategy::None),
        ("ChooseBP w=20", BreakpointStrategy::ChooseBP { w: 20 }),
        ("ChooseMaxMP w=20", BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }),
    ] {
        println!("--- {label} ---");
        let config = EncodeConfig { strategy, family: FnFamily::SqrtLog, ..Default::default() };
        let tr =
            Encoder::new(config).encode_attribute(&mut rng, &d, attr).expect("encode attribute");
        let orig = tr.orig_domain.clone();
        let transformed: Vec<f64> =
            orig.iter().map(|&x| tr.encode(x).expect("in-domain value")).collect();

        // Hacker toolkit 1: curve fitting with growing prior knowledge.
        for (who, n_good) in [("ignorant*", 0), ("knowledgeable", 2), ("expert", 4), ("insider", 8)]
        {
            let cracked: Vec<Vec<bool>> = FitMethod::ALL
                .iter()
                .map(|&method| {
                    let kps = if n_good == 0 {
                        // The ignorant hacker anchors the transformed
                        // extremes to a (wrongly) guessed range.
                        let width = orig[orig.len() - 1] - orig[0];
                        vec![
                            ppdt::attack::KnowledgePoint {
                                transformed: transformed
                                    .iter()
                                    .copied()
                                    .fold(f64::INFINITY, f64::min),
                                guessed: orig[0] - 0.3 * width,
                            },
                            ppdt::attack::KnowledgePoint {
                                transformed: transformed
                                    .iter()
                                    .copied()
                                    .fold(f64::NEG_INFINITY, f64::max),
                                guessed: orig[orig.len() - 1] + 0.2 * width,
                            },
                        ]
                    } else {
                        generate_kps(
                            &mut rng,
                            &transformed,
                            |y| tr.decode_snapped(y).unwrap_or(f64::NAN),
                            rho,
                            n_good,
                            0,
                        )
                    };
                    let g = fit_crack(method, &kps);
                    orig.iter()
                        .zip(&transformed)
                        .map(|(&x, &y)| is_crack(g.guess(y), x, rho))
                        .collect()
                })
                .collect();
            let combo = combine_cracks(&cracked);
            println!(
                "  {who:>13}: regression {:>5.1}%  spline {:>5.1}%  polyline {:>5.1}%  | consensus {:>5.1}%",
                100.0 * combo.method_risk(0),
                100.0 * combo.method_risk(1),
                100.0 * combo.method_risk(2),
                100.0 * combo.consensus_risk,
            );
        }

        // Hacker toolkit 2: worst-case sorting attack (true min/max known).
        let atk = sorting_attack(&transformed, orig[0], orig[orig.len() - 1], 1.0);
        let cracks = orig
            .iter()
            .zip(&transformed)
            .filter(|&(&x, &y)| is_crack(atk.guess(y), x, rho))
            .count();
        println!("  sorting (worst case): {:>5.1}%", 100.0 * cracks as f64 / orig.len() as f64);
        println!();
    }
    println!("* the ignorant hacker has no knowledge points and guesses the range");
}
