//! The "recipe" of the paper's Section 5.4, as a tool: decide per
//! attribute whether it is safe to release under the piecewise
//! framework, from its monochromatic structure and discontinuities.
//!
//! ```sh
//! cargo run --release --example safe_release_advisor
//! ```
//!
//! > "If A has many monochromatic pieces, or if the non-monochromatic
//! > pieces contain many discontinuities, then A is safe [...] The
//! > only situation that is unsafe is when A has few monochromatic
//! > values and simultaneously few discontinuities."
//!
//! The library advisor (`ppdt::risk::advise`) sharpens the recipe with
//! this repo's extension findings: discontinuities stop only the
//! paper's consecutive sorting attack, so they earn at most a
//! *Caution*; genuine safety needs monochromatic pieces wider than the
//! crack radius. Each verdict is backed by a measured worst-case
//! sorting attack (both the paper's variant and the stronger
//! rank-proportional one).

use ppdt::attack::SortingMapping;
use ppdt::data::gen::{covertype_like, CovertypeConfig};
use ppdt::data::AttrId;
use ppdt::prelude::*;
use ppdt::risk::{advise, run_trials, sorting_risk_trial_with};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let d = covertype_like(&mut rng, &CovertypeConfig { num_rows: 12_000, ..Default::default() });
    let config = EncodeConfig::default();
    let rho_frac = 0.02;

    let advice = advise(&d, rho_frac, 1.0);
    println!(
        "{:>6} | {:>8} | {:>9} {:>12} | {:>9} {:>10} | {:>9} {:>10}",
        "attr", "verdict", "%mono", "piece/rho", "est-sort", "sort", "est-rank", "sort-prop"
    );
    for (i, a) in advice.iter().enumerate() {
        let measure = |mapping: SortingMapping, salt: u64| {
            run_trials(11, 40 + salt + i as u64, |rng| {
                sorting_risk_trial_with(rng, &d, AttrId(i), &config, rho_frac, 1.0, mapping)
                    .expect("trial")
            })
            .median
        };
        println!(
            "{:>6} | {:>8} | {:>8.1}% {:>12.2} | {:>8.1}% {:>9.1}% | {:>8.1}% {:>9.1}%",
            i + 1,
            format!("{:?}", a.verdict),
            100.0 * a.pct_mono_values,
            a.piece_width_vs_radius,
            100.0 * a.est_consecutive_crack,
            100.0 * measure(SortingMapping::Consecutive, 0),
            100.0 * a.est_rank_crack,
            100.0 * measure(SortingMapping::Proportional, 500),
        );
    }

    println!("\nreasoning:");
    for (i, a) in advice.iter().enumerate() {
        println!("  attr {:>2}: {}", i + 1, a.reasoning);
    }
    println!(
        "\nUnsafe/Caution attributes should be released only in association with others\n\
         (Figure 12: subspace association risk collapses as the subspace grows),\n\
         or not at all if the attribute's own values are the secret."
    );
}
