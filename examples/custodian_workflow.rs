//! The full data-custodian workflow from the paper's introduction:
//! a medical research group outsources decision-tree mining on a
//! patient biomarker study without trusting the mining company.
//!
//! ```sh
//! cargo run --release --example custodian_workflow
//! ```
//!
//! Demonstrates: verified encoding (redraw until the no-outcome-change
//! guarantee is checked end-to-end), persisting the custodian key to a
//! JSON file, decoding the miner's tree from the key alone, and a
//! quick disclosure-risk self-audit before release.

use ppdt::prelude::*;
use ppdt::transform::{audit_key_against, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // The study data: a WDBC-like table of cell morphology features
    // with a benign/malignant label (569 patients, like the original).
    let d = ppdt::data::gen::wdbc_like(&mut rng, 569);
    println!(
        "study data: {} patients, {} features, {} classes",
        d.num_rows(),
        d.num_attrs(),
        d.num_classes()
    );

    // --- 1. Encode, with end-to-end verification. -------------------
    // Anti-monotone directions are allowed here; the verified encoder
    // redraws if a metric tie would break exact decodability.
    let config = EncodeConfig {
        strategy: BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 },
        family: FnFamily::Mixed,
        anti_monotone_prob: 0.5,
        ..Default::default()
    };
    let params = TreeParams { min_samples_leaf: 5, ..Default::default() };
    let encoded = Encoder::new(config)
        .retry(RetryPolicy::failing(8))
        .verify_with(params)
        .encode(&mut rng, &d)
        .expect("verified encode");
    let (key, d_prime, attempts) = (encoded.key, encoded.dataset, encoded.attempts);
    println!("encoded in {attempts} attempt(s); every value transformed");

    // --- 2. Persist the key (Section 5.4: "rather minimal"). ---------
    let key_json = serde_json::to_string(&key).expect("key serializes");
    let key_path = std::env::temp_dir().join("ppdt_custodian_key.json");
    std::fs::write(&key_path, &key_json).expect("write key file");
    println!("custodian key: {} bytes -> {}", key_json.len(), key_path.display());

    // --- 3. Ship D' to the miner; receive T'. ------------------------
    let t_prime = TreeBuilder::new(params).fit(&d_prime);
    println!("miner returns T': {} leaves, depth {}", t_prime.num_leaves(), t_prime.depth());

    // --- 4. Decode T' using the key loaded from disk. ----------------
    let key_loaded: TransformKey =
        serde_json::from_str(&std::fs::read_to_string(&key_path).expect("read key"))
            .expect("key deserializes");
    // A loaded key is untrusted until audited against the data it
    // claims to cover (hostile-input hardening: corrupt keys are
    // reported, not panicked on).
    let audit = audit_key_against(&key_loaded, &d);
    assert!(audit.passed(), "key audit failed:\n{}", audit.to_json_pretty());
    println!("key audit: {} attribute(s) checked, no findings", audit.attrs_checked);

    let s = key_loaded.decode_tree(&t_prime, params.threshold_policy, &d).expect("decode tree");
    let t = TreeBuilder::new(params).fit(&d);
    assert!(trees_equal(&s, &t), "decode must reproduce the direct tree");
    println!("decoded tree equals the directly mined tree (exact, bitwise)");
    println!("decoded tree classifies the study data at {:.1}% accuracy", 100.0 * s.accuracy(&d));

    // --- 5. Self-audit: what could a hacker recover from D'? ---------
    println!("\nself-audit (expert hacker, polyline fitting, rho = 2%):");
    let scenario = DomainScenario::polyline(HackerProfile::Expert);
    for a in d.schema().attrs() {
        let stats = run_trials(25, 1000 + a.index() as u64, |rng| {
            domain_risk_trial(rng, &d, a, &config, &scenario).expect("trial")
        });
        println!(
            "  {:>15}: median domain disclosure {:>5.1}%  (p90 {:>5.1}%)",
            d.schema().attr_name(a),
            100.0 * stats.median,
            100.0 * stats.p90
        );
    }
    println!("\nrelease decision: ship D' and the mined model; keep the key offline.");

    let _ = std::fs::remove_file(&key_path);
}
