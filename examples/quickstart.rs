//! Quickstart: the paper's Figure 1, end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A custodian transforms a tiny employee table, hands the encoded
//! version to an (untrusted) miner, decodes the mined tree and checks
//! it equals the tree mined directly on the original data.

use ppdt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The training data D of Figure 1(a): age, salary -> High/Low.
    let d = ppdt::data::gen::figure1();
    println!("original data D ({} tuples):", d.num_rows());
    for row in 0..d.num_rows() {
        println!(
            "  age {:>3}  salary {:>6}  {}",
            d.value(row, AttrId(0)),
            d.value(row, AttrId(1)),
            d.schema().class_name(d.label(row)),
        );
    }

    // Encode with the default configuration: ChooseMaxMP breakpoints,
    // mixed function families, random permutations on monochromatic
    // pieces.
    let mut rng = StdRng::seed_from_u64(7);
    let (key, d_prime) = Encoder::new(EncodeConfig::default())
        .encode(&mut rng, &d)
        .expect("encode dataset")
        .into_parts();
    println!("\ntransformed data D' (what the miner sees):");
    for row in 0..d_prime.num_rows() {
        println!(
            "  age' {:>8.2}  salary' {:>12.2}  {}",
            d_prime.value(row, AttrId(0)),
            d_prime.value(row, AttrId(1)),
            d_prime.schema().class_name(d_prime.label(row)),
        );
    }

    // The miner builds the tree on D'.
    let t_prime = TreeBuilder::default().fit(&d_prime);
    println!("\nmined tree T' (encoded thresholds):\n{}", t_prime.render(Some(d.schema())));

    // The custodian decodes with the key.
    let s = key.decode_tree(&t_prime, ThresholdPolicy::DataValue, &d).expect("decode tree");
    println!("decoded tree S:\n{}", s.render(Some(d.schema())));

    // No outcome change: S equals the tree mined on D directly.
    let t = TreeBuilder::default().fit(&d);
    assert!(trees_equal(&s, &t), "no-outcome-change guarantee violated!");
    println!("S == T: the custodian recovered the exact tree without exposing D.");
}
